"""One-dimensional skip-webs, with and without the §2.4.1 bucket blocking.

Two structures are provided:

* :class:`SkipWeb1D` — the generic skip-web of §2.3–§2.5 instantiated
  with the sorted linked list.  With one host per key and owner blocking
  this matches the deployment of skip graphs / SkipNet: ``O(log n)``
  memory and congestion, ``O(log n)`` expected query and update messages.

* :class:`BucketSkipWeb1D` — the improved blocking strategy of §2.4.1.
  Levels that are multiples of ``L = ⌈log₂ M⌉`` are *basic*; each basic
  level's list is cut into contiguous blocks of about ``M / L`` ranges,
  one block per host, and every host additionally stores copies of the
  ranges of the non-basic levels above its block that conflict with what
  it already stores (the cascade described in the paper).  A query then
  only pays messages when it crosses from one basic level's blocks to the
  next, giving ``O(log n / log M)`` expected messages — the paper's
  headline improvement over skip graphs, and ``O(log_M H)`` for the
  bucket skip-web row of Table 1.

Implementation note.  The bucket structure stores every copy explicitly
on the simulated hosts (so memory and congestion are measured, not
assumed), but intra-host navigation is elided during queries: the query
walks the chain of per-level targets and charges one message whenever the
next target's copies all live on hosts other than the current one, which
is exactly the paper's cost model (local processing is free).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Any, Hashable, Sequence

from repro.core.bulkload import charge_construction, is_strictly_increasing
from repro.core.levels import BitPrefix, MembershipAssignment
from repro.core.link_structure import RangeUnit
from repro.core.query import QueryResult
from repro.core.range_query import (
    DEFAULT_FAN_OUT,
    RangeBranchReport,
    RangeQueryResult,
    assemble_range_result,
    partition_walks,
)
from repro.core.ranges import Interval, coerce_interval, interval_anchor
from repro.core.skipweb import SkipWeb, SkipWebConfig, SkipWebStructureAdapter
from repro.core.update import UpdateResult
from repro.engine.repair import MigrationSummary
from repro.engine.steps import StepCursor, StepGenerator, local_steps, run_immediate
from repro.errors import ChurnError, QueryError, StructureError, UpdateError
from repro.net.congestion import CongestionReport, congestion_report
from repro.net.message import MessageKind
from repro.net.naming import Address, HostId
from repro.net.network import Network
from repro.onedim.linked_list import SortedListStructure


class SkipWeb1D(SkipWebStructureAdapter):
    """A skip-web over sorted numeric keys (arbitrary blocking, §2.4).

    This is a thin convenience wrapper around the generic
    :class:`repro.core.skipweb.SkipWeb` that fixes the link structure to
    :class:`SortedListStructure` and exposes one-dimensional query names.
    """

    def _coerce_query(self, query: Any) -> float:
        return float(query)

    def _coerce_item(self, item: Any) -> float:
        return float(item)

    def _coerce_range(self, query_range: Any) -> Interval:
        return coerce_interval(query_range)

    def __init__(
        self,
        keys: Sequence[float],
        network: Network | None = None,
        host_count: int | None = None,
        blocking: str = "owner",
        seed: int = 0,
        height: int | None = None,
    ) -> None:
        config = SkipWebConfig(
            host_count=host_count, blocking=blocking, seed=seed, height=height
        )
        self.web = SkipWeb(
            SortedListStructure,
            [float(key) for key in keys],
            network=network,
            config=config,
        )

    # -- queries -------------------------------------------------------- #
    def nearest(self, query: float, origin_host: HostId | None = None) -> QueryResult:
        """One-dimensional nearest-neighbour query (≡ point location in ``D(S)``)."""
        return self.web.query(float(query), origin_host=origin_host)

    def contains(self, key: float, origin_host: HostId | None = None) -> bool:
        """Exact-membership query."""
        result = self.nearest(key, origin_host=origin_host)
        return bool(result.answer.exact)

    def range_search(
        self, low: float, high: float, origin_host: HostId | None = None
    ) -> RangeQueryResult:
        """All stored keys in ``[low, high]``: O(log n + k) expected messages."""
        return self.range_report((low, high), origin_host=origin_host)

    # -- updates -------------------------------------------------------- #
    def insert(self, key: float, origin_host: HostId | None = None) -> UpdateResult:
        return self.web.insert(float(key), origin_host=origin_host)

    def delete(self, key: float, origin_host: HostId | None = None) -> UpdateResult:
        return self.web.delete(float(key), origin_host=origin_host)

    # -- accounting ------------------------------------------------------ #
    @property
    def network(self) -> Network:
        return self.web.network

    @property
    def keys(self) -> list[float]:
        return sorted(self.web.items)

    @property
    def host_count(self) -> int:
        return self.web.host_count

    def max_memory_per_host(self) -> int:
        return self.web.max_memory_per_host()

    def congestion(self) -> CongestionReport:
        return self.web.congestion()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SkipWeb1D(n={len(self.web.items)}, hosts={self.host_count})"


@dataclass(frozen=True)
class _Copy:
    """One stored copy of a level unit (what a bucket host keeps in a slot)."""

    level: int
    prefix: BitPrefix
    unit: RangeUnit


def _unit_position(unit: RangeUnit) -> tuple[float, int]:
    """Total order of a sorted list's units along the line (for contiguous blocks)."""
    if unit.is_node:
        return (float(unit.payload), 0)
    low, high = unit.payload
    if low is None:
        return (-math.inf, 1)
    return (float(low), 1)


class BucketSkipWeb1D:
    """The bucket skip-web of §2.4.1 for one-dimensional keys.

    Parameters
    ----------
    keys:
        The ground set of numeric keys.
    memory_size:
        The paper's ``M`` — the number of items a host may store.  The
        number of hosts follows from it (``H = O(n log n / M)``).
    seed:
        Seed for the membership words.
    network:
        Optional pre-existing network; hosts are always created by this
        class (one per block), so normally omit it.
    """

    def __init__(
        self,
        keys: Sequence[float],
        memory_size: int,
        seed: int = 0,
        network: Network | None = None,
    ) -> None:
        converted = [float(key) for key in keys]
        if is_strictly_increasing(converted):
            unique_keys = converted  # O(n) bulk-load fast path
        else:
            unique_keys = sorted(set(converted))
        if not unique_keys:
            raise StructureError("bucket skip-web requires at least one key")
        if memory_size < 4:
            raise ValueError(f"memory_size must be at least 4, got {memory_size}")
        self._keys = unique_keys
        self.memory_size = memory_size
        self._rng = random.Random(seed)
        self.network = network if network is not None else Network()

        self._membership = MembershipAssignment(unique_keys, rng=self._rng)
        self.height = self._membership.height
        self.level_gap = max(1, math.ceil(math.log2(memory_size)))
        self.basic_levels = list(range(0, self.height + 1, self.level_gap))
        self.block_capacity = max(2, memory_size // self.level_gap)

        # Hosts that left (or crashed) and must not receive blocks again.
        self._retired_hosts: set[HostId] = set()
        # (level, prefix) -> SortedListStructure
        self._structures: dict[tuple[int, BitPrefix], SortedListStructure] = {}
        # (level, prefix, unit key) -> hosts storing a copy
        self._stored_at: dict[tuple[int, BitPrefix, Hashable], set[HostId]] = {}
        # (basic level, prefix, unit key) -> the block host (unique home)
        self._block_host: dict[tuple[int, BitPrefix, Hashable], HostId] = {}
        # addresses of every stored copy, for memory accounting / teardown
        self._copy_addresses: list[Address] = []

        #: CONSTRUCTION messages charged by a bulk-load build (0 otherwise).
        self.construction_messages = 0

        self._rebuild_layout()

    @classmethod
    def build_from_sorted(
        cls, keys: Sequence[float], memory_size: int, **kwargs: Any
    ) -> "BucketSkipWeb1D":
        """Bulk-load constructor over pre-sorted, deduplicated ``keys``.

        Skips the defensive O(n log n) sort (the constructor verifies
        sortedness in O(n)) and charges one CONSTRUCTION ledger message
        per copy placed on a host other than the coordinator, mirroring
        :meth:`repro.core.skipweb.SkipWeb.build_from_sorted`.
        """
        structure = cls(keys, memory_size, **kwargs)
        coordinator = structure._pool_hosts()[0]
        structure.construction_messages = charge_construction(
            structure.network,
            coordinator,
            (address.host for address in structure._copy_addresses),
        )
        return structure

    # ------------------------------------------------------------------ #
    # layout construction
    # ------------------------------------------------------------------ #
    def _pool_hosts(self) -> list[HostId]:
        """Hosts eligible to hold blocks: alive and never retired by churn."""
        return [
            host_id
            for host_id in self.network.alive_host_ids()
            if host_id not in self._retired_hosts
        ]

    def _rebuild_layout(self) -> None:
        """(Re)compute level structures, blocks and copies from scratch."""
        for address in self._copy_addresses:
            self.network.free(address)
        self._copy_addresses.clear()
        self._structures.clear()
        self._stored_at.clear()
        self._block_host.clear()

        for level in range(self.height + 1):
            for prefix, members in self._membership.level_sets(level).items():
                self._structures[(level, prefix)] = SortedListStructure(members)

        # The paper's host budget: H ≤ c · n · log n / M (§2.4.1).  Blocks
        # are dealt to this pool round-robin, so small level sets share
        # hosts instead of each grabbing their own.
        n = len(self._keys)
        target_hosts = max(1, math.ceil(2 * n * (self.height + 1) / self.memory_size))
        host_pool = self._pool_hosts()
        while len(host_pool) < target_hosts:
            host_pool.append(self.network.add_host().host_id)
        block_cycle = 0

        # 1. blocks at basic levels
        for level in self.basic_levels:
            for prefix, structure in self._level_structures(level):
                ordered_units = sorted(structure.units(), key=_unit_position)
                for start in range(0, len(ordered_units), self.block_capacity):
                    block_units = ordered_units[start : start + self.block_capacity]
                    host_id = host_pool[block_cycle % len(host_pool)]
                    block_cycle += 1
                    for unit in block_units:
                        self._store_copy(level, prefix, unit, host_id)
                        self._block_host[(level, prefix, unit.key)] = host_id

        # 2. cascading copies at non-basic levels: a unit is stored on every
        #    host that stores a conflicting unit one level below.
        for level in range(1, self.height + 1):
            if level in self.basic_levels:
                continue
            for prefix, structure in self._level_structures(level):
                parent_prefix = prefix[:-1]
                parent_structure = self._structures.get((level - 1, parent_prefix))
                if parent_structure is None:
                    continue
                for unit in structure.units():
                    hosts: set[HostId] = set()
                    for conflicting in parent_structure.conflicts(unit.range):
                        hosts |= self._stored_at.get(
                            (level - 1, parent_prefix, conflicting.key), set()
                        )
                    for host_id in hosts:
                        self._store_copy(level, prefix, unit, host_id)

    def _level_structures(self, level: int):
        for (lvl, prefix), structure in self._structures.items():
            if lvl == level:
                yield prefix, structure

    def _store_copy(
        self, level: int, prefix: BitPrefix, unit: RangeUnit, host_id: HostId
    ) -> None:
        stored = self._stored_at.setdefault((level, prefix, unit.key), set())
        if host_id in stored:
            return
        address = self.network.store(
            host_id, _Copy(level=level, prefix=prefix, unit=unit)
        )
        self._copy_addresses.append(address)
        stored.add(host_id)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def _basic_level_at_or_below(self, level: int) -> int:
        return (level // self.level_gap) * self.level_gap

    def _target_chain(
        self, query: float, word: BitPrefix
    ) -> list[tuple[int, BitPrefix, RangeUnit]]:
        """The per-level target units for ``query`` along the word's prefix chain."""
        chain: list[tuple[int, BitPrefix, RangeUnit]] = []
        for level in range(self.height, -1, -1):
            prefix = word[:level]
            structure = self._structures.get((level, prefix))
            if structure is None:
                continue
            chain.append((level, prefix, structure.locate(query)))
        return chain

    def _root_host_for_key(self, origin_key: float, word: BitPrefix) -> HostId:
        """The block host responsible for ``origin_key`` at the top basic level."""
        top_basic = self.basic_levels[-1]
        basic_prefix = word[:top_basic]
        basic_structure = self._structures[(top_basic, basic_prefix)]
        origin_unit = basic_structure.locate(origin_key)
        return self._block_host[(top_basic, basic_prefix, origin_unit.key)]

    def _origin_for_key(self, origin_key: float | None) -> HostId | None:
        """Default origin host: the root (block host) of ``origin_key``.

        Returns ``None`` for unknown keys; the step generators then raise
        the same :class:`QueryError` the eager API used to raise.
        """
        key = float(origin_key) if origin_key is not None else self._keys[0]
        if key not in self._membership:
            return None
        return self._root_host_for_key(key, self._membership.word(key))

    def search_steps(
        self,
        query: float,
        origin_host: HostId | None = None,
        origin_key: float | None = None,
    ) -> StepGenerator:
        """The nearest-neighbour descent as a resumable step generator.

        The search starts from ``origin_host`` (default: the block host
        responsible for ``origin_key``, i.e. that key's "root"), descends
        the chain of per-level targets along the origin key's membership
        word, and hops to the responsible block host whenever the next
        target is not already stored locally.
        """
        point = float(query)
        if origin_key is None:
            origin_key = self._keys[0]
        origin_key = float(origin_key)
        if origin_key not in self._membership:
            raise QueryError(f"origin key {origin_key!r} is not stored")
        word = self._membership.word(origin_key)
        chain = self._target_chain(point, word)
        if not chain:
            raise QueryError("bucket skip-web has no level structures")

        if origin_host is None:
            origin_host = self._root_host_for_key(origin_key, word)

        cursor = StepCursor(origin_host)
        per_level_messages: list[int] = []
        for level, prefix, unit in chain:
            hops_before = cursor.hops
            stored = self._stored_at.get((level, prefix, unit.key), set())
            if cursor.current_host not in stored:
                if not stored:
                    # A concurrent insert/delete re-dealt the layout and
                    # this walk's target chain no longer exists; raising a
                    # retryable error restarts the operation from fresh
                    # state (the batch executor's ordinary conflict path).
                    raise QueryError(
                        f"unit {unit.key!r} at level {level} has no stored copies "
                        "(layout re-dealt concurrently)"
                    )
                target_host = self._preferred_host(point, level, word)
                if target_host not in stored:
                    # Block-boundary corner case: fall back to any holder.
                    target_host = next(iter(stored))
                yield from cursor.hop_to(target_host)
            per_level_messages.append(cursor.hops - hops_before)

        level0 = self._structures[(0, ())]
        final_unit = chain[-1][2]
        answer = level0.answer(point, final_unit)
        return QueryResult(
            query=point,
            answer=answer,
            messages=cursor.hops,
            origin_host=origin_host,
            hosts_visited=cursor.path_tuple(),
            levels_descended=len(chain) - 1,
            target_key=final_unit.key,
            per_level_messages=tuple(per_level_messages),
        )

    def nearest(
        self,
        query: float,
        origin_key: float | None = None,
        origin_host: HostId | None = None,
    ) -> QueryResult:
        """Nearest-neighbour query; messages are charged per host crossing."""
        if origin_host is None:
            origin_host = self._origin_for_key(origin_key)
        gen = self.search_steps(query, origin_host=origin_host, origin_key=origin_key)
        return run_immediate(self.network, gen, origin_host, kind=MessageKind.QUERY)

    def _preferred_host(self, query: float, level: int, word: BitPrefix) -> HostId:
        """The block host that covers ``query`` from ``level`` down to its basic level."""
        basic = self._basic_level_at_or_below(level)
        prefix = word[:basic]
        structure = self._structures[(basic, prefix)]
        unit = structure.locate(query)
        return self._block_host[(basic, prefix, unit.key)]

    def contains(self, key: float, origin_key: float | None = None) -> bool:
        """Exact-membership query."""
        return bool(self.nearest(key, origin_key=origin_key).answer.exact)

    # ------------------------------------------------------------------ #
    # range reporting (output-sensitive; block-host walks)
    # ------------------------------------------------------------------ #
    def _bucket_report_walk(
        self,
        interval: Interval,
        entries: Sequence[tuple[RangeUnit, HostId]],
        start_host: HostId,
    ) -> StepGenerator:
        """One report sub-walk over (unit, block host) pairs in key order.

        Consecutive keys of the same block share a host, so a whole block
        of matches costs a single crossing — this is where the bucket
        blocking's advantage shows up in the k term (≈ k / block size
        messages instead of ≈ k).
        """
        level0 = self._structures[(0, ())]
        cursor = StepCursor(start_host)
        values: list[Any] = []
        for unit, host in entries:
            yield from cursor.hop_to(host)
            values.extend(level0.report_values(interval, unit))
        return RangeBranchReport(
            values=tuple(values),
            messages=cursor.hops,
            hosts_visited=cursor.path_tuple(),
        )

    def range_steps(
        self,
        query_range: Any,
        origin_host: HostId | None = None,
        origin_key: float | None = None,
        fan_out: int = DEFAULT_FAN_OUT,
    ) -> StepGenerator:
        """Output-sensitive 1-d range reporting as a resumable step generator.

        Locates the low endpoint through the ordinary bucket descent
        (``O(log n / log M)`` messages), then forks block-host sub-walks
        over the matching level-0 units.
        """
        interval = coerce_interval(query_range)
        anchor = interval_anchor(interval, self._keys[0])
        search = yield from self.search_steps(
            anchor, origin_host=origin_host, origin_key=origin_key
        )
        level0 = self._structures[(0, ())]
        matched_units = level0.report_units(interval)
        entries = [
            (unit, self._block_host[(0, (), unit.key)]) for unit in matched_units
        ]
        start_host = (
            search.hosts_visited[-1] if search.hosts_visited else search.origin_host
        )
        chunks = partition_walks(entries, fan_out)
        cursor = StepCursor(start_host)
        reports = yield from cursor.fork(
            [self._bucket_report_walk(interval, chunk, start_host) for chunk in chunks]
        )
        return assemble_range_result(
            interval,
            reports,
            descent_messages=search.messages,
            descent_hosts=search.hosts_visited,
            origin_host=search.origin_host,
            levels_descended=search.levels_descended,
        )

    def range_report(
        self,
        query_range: Any,
        origin_key: float | None = None,
        origin_host: HostId | None = None,
        fan_out: int = DEFAULT_FAN_OUT,
    ) -> RangeQueryResult:
        """Immediate-mode range reporting; see :meth:`range_steps`."""
        if origin_host is None:
            origin_host = self._origin_for_key(origin_key)
        gen = self.range_steps(
            query_range, origin_host=origin_host, origin_key=origin_key, fan_out=fan_out
        )
        return run_immediate(self.network, gen, origin_host, kind=MessageKind.QUERY)

    def range_search(
        self, low: float, high: float, origin_key: float | None = None
    ) -> RangeQueryResult:
        """All stored keys in ``[low, high]``; see :meth:`range_steps`."""
        return self.range_report((low, high), origin_key=origin_key)

    # ------------------------------------------------------------------ #
    # updates (§4: messages only reach basic levels; block splits amortised)
    # ------------------------------------------------------------------ #
    def insert_steps(
        self,
        key: float,
        origin_host: HostId | None = None,
        origin_key: float | None = None,
    ) -> StepGenerator:
        """Insertion as a resumable step generator; ``O(log n / log M)`` messages."""
        point = float(key)
        if point in self._membership:
            raise UpdateError(f"key {point!r} is already stored")
        search = yield from self.search_steps(
            point, origin_host=origin_host, origin_key=origin_key
        )
        word = self._membership.assign(point)
        # Determine the responsible block hosts from the pre-update layout,
        # apply the whole structural change atomically, then charge — an
        # operation interrupted mid-charge leaves the structure consistent.
        targets = self._basic_level_hosts(point, word)
        self._keys = sorted(self._keys + [point])
        self._rebuild_layout()
        messages, hosts_touched = yield from self._charge_hosts(search, targets)
        return UpdateResult(
            item=point,
            kind="insert",
            messages=search.messages + messages,
            search_messages=search.messages,
            propagate_messages=messages,
            levels_touched=len(self.basic_levels),
            records_added=0,
            records_removed=0,
            hosts_touched=hosts_touched,
        )

    def insert(self, key: float, origin_key: float | None = None) -> UpdateResult:
        """Insert ``key``; expected ``O(log n / log M)`` messages."""
        origin_host = self._origin_for_key(origin_key)
        gen = self.insert_steps(key, origin_host=origin_host, origin_key=origin_key)
        return run_immediate(self.network, gen, origin_host, kind=MessageKind.UPDATE)

    def delete_steps(
        self,
        key: float,
        origin_host: HostId | None = None,
        origin_key: float | None = None,
    ) -> StepGenerator:
        """Deletion as a resumable step generator; ``O(log n / log M)`` messages."""
        point = float(key)
        if point not in self._membership:
            raise UpdateError(f"key {point!r} is not stored")
        if len(self._keys) == 1:
            raise UpdateError("cannot delete the last key")
        origin_key = self._delete_origin_key(point, origin_key)
        search = yield from self.search_steps(
            point, origin_host=origin_host, origin_key=origin_key
        )
        word = self._membership.word(point)
        targets = self._basic_level_hosts(point, word)
        self._membership.forget(point)
        self._keys = [existing for existing in self._keys if existing != point]
        self._rebuild_layout()
        messages, hosts_touched = yield from self._charge_hosts(search, targets)
        return UpdateResult(
            item=point,
            kind="delete",
            messages=search.messages + messages,
            search_messages=search.messages,
            propagate_messages=messages,
            levels_touched=len(self.basic_levels),
            records_added=0,
            records_removed=0,
            hosts_touched=hosts_touched,
        )

    def _delete_origin_key(self, point: float, origin_key: float | None) -> float | None:
        """Origin key for a delete's search: never the key being deleted.

        Shared by :meth:`delete` (which resolves the driver's origin host
        from it) and :meth:`delete_steps` (which seeds its search from the
        same key), so the two can never diverge.
        """
        if origin_key is None or float(origin_key) == point:
            return next((existing for existing in self._keys if existing != point), None)
        return float(origin_key)

    def delete(self, key: float, origin_key: float | None = None) -> UpdateResult:
        """Delete ``key``; expected ``O(log n / log M)`` messages."""
        point = float(key)
        origin_host = self._origin_for_key(self._delete_origin_key(point, origin_key))
        gen = self.delete_steps(point, origin_host=origin_host, origin_key=origin_key)
        return run_immediate(self.network, gen, origin_host, kind=MessageKind.UPDATE)

    def _basic_level_hosts(self, key: float, word: BitPrefix) -> list[HostId]:
        """The responsible block host per basic level (in descent order).

        Non-basic levels live on the same hosts as the basic blocks below
        them (the cascade), so one message per basic level covers them —
        this is the reason the paper's one-dimensional update bound
        improves to ``O(log n / log log n)``.
        """
        hosts: list[HostId] = []
        for level in self.basic_levels:
            prefix = word[:level]
            structure = self._structures.get((level, prefix))
            if structure is None:
                continue
            unit = structure.locate(key)
            host = self._block_host.get((level, prefix, unit.key))
            if host is not None:
                hosts.append(host)
        return hosts

    def _charge_hosts(
        self, search: QueryResult, targets: Sequence[HostId]
    ) -> StepGenerator:
        """Charge one update message per responsible block host."""
        start_host = search.hosts_visited[-1] if search.hosts_visited else 0
        cursor = StepCursor(start_host)
        touched: set[HostId] = set()
        for host in targets:
            yield from cursor.hop_to(host)
            touched.add(host)
        return cursor.hops, len(touched)

    # ------------------------------------------------------------------ #
    # churn: migration and self-repair (see repro.engine.repair)
    # ------------------------------------------------------------------ #
    def _relayout_for_churn(
        self, kind: str, hosts: tuple[HostId, ...], origin: HostId
    ) -> StepGenerator:
        """Rebuild the block layout and charge every copy that changed home.

        Bucket blocking is positional (contiguous blocks dealt round-robin
        to the host pool), so membership change re-deals the layout rather
        than moving records one by one; the diff against the previous
        placement is what a real redistribution would have shipped, and
        each newly placed copy is charged one message.  Copies carry no
        stored pointers, so no rewiring pass is needed.
        """
        before: dict[tuple[int, BitPrefix, Hashable], set[HostId]] = {
            entry: set(holders) for entry, holders in self._stored_at.items()
        }
        self._rebuild_layout()
        cursor = StepCursor(origin)
        yield from cursor.hop_to(origin)  # announce the coordinator (free)
        moved = 0
        for entry, holders in self._stored_at.items():
            for destination in sorted(holders - before.get(entry, set())):
                yield from cursor.hand_off(destination, origin)
                moved += 1
        return MigrationSummary(
            kind=kind,
            hosts=hosts,
            records_moved=moved,
            pointers_rewired=0,
            hosts_touched=cursor.distinct_hosts(),
        )

    def migrate_host(
        self,
        host_id: HostId,
        targets: Sequence[HostId] | None = None,
        fraction: float = 1.0,
    ) -> StepGenerator:
        """Retire ``host_id`` from the block pool and re-deal the layout.

        Bucket blocking cannot migrate partially — blocks are contiguous —
        so any ``fraction`` re-deals the full layout; ``targets`` join the
        pool implicitly by being alive in the network.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        self.network.host(host_id)  # validate early
        if fraction >= 1.0:
            self._retired_hosts.add(host_id)
        summary = yield from self._relayout_for_churn("migrate", (host_id,), host_id)
        return summary

    def repair(self, host_ids: Sequence[HostId]) -> StepGenerator:
        """Crash repair: drop dead hosts from the pool and re-deal the layout."""
        dead = set(host_ids)
        if not dead:
            raise ChurnError("bucket skip-web repair needs at least one crashed host")
        self._retired_hosts |= dead
        alive = self._pool_hosts()
        if not alive:
            raise ChurnError("bucket skip-web cannot lose its last live host")
        summary = yield from self._relayout_for_churn(
            "repair", tuple(sorted(dead)), alive[0]
        )
        return summary

    # ------------------------------------------------------------------ #
    # DistributedStructure protocol (batched execution; see repro.engine)
    # ------------------------------------------------------------------ #
    def origin_hosts(self) -> list[HostId]:
        """Every live pool host may originate operations (block hosts are roots)."""
        return self._pool_hosts()

    def seed_roots(self, origin_host: HostId) -> StepGenerator:
        """Step generator returning the copies ``origin_host`` stores locally."""
        return local_steps(
            [item for _address, item in self.network.host(origin_host).items()]
        )

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #
    @property
    def keys(self) -> list[float]:
        return list(self._keys)

    @property
    def ground_set_size(self) -> int:
        return len(self._keys)

    @property
    def host_count(self) -> int:
        return self.network.host_count

    def max_memory_per_host(self) -> int:
        return self.network.max_memory_used()

    def memory_profile(self) -> dict[HostId, int]:
        return self.network.memory_profile()

    def congestion(self) -> CongestionReport:
        """Congestion per §1.1: cross-host references of the copy cascade."""
        for host in self.network.hosts():
            host.reset_reference_counts()
        for (level, prefix, key), hosts in self._stored_at.items():
            if level == 0:
                continue
            parent_prefix = prefix[:-1]
            parent_structure = self._structures.get((level - 1, parent_prefix))
            if parent_structure is None:
                continue
            unit = self._structures[(level, prefix)].unit(key)
            for conflicting in parent_structure.conflicts(unit.range):
                parent_hosts = self._stored_at.get(
                    (level - 1, parent_prefix, conflicting.key), set()
                )
                for host in hosts:
                    for parent_host in parent_hosts:
                        if parent_host != host:
                            self.network.host(host).note_out_reference(1)
                            self.network.host(parent_host).note_in_reference(1)
        return congestion_report(self.network, self.ground_set_size)

    def validate(self) -> None:
        """Structural sanity checks used by the test suite."""
        level0 = self._structures.get((0, ()))
        if level0 is None:
            raise StructureError("bucket skip-web is missing its level-0 list")
        if sorted(level0.items) != self._keys:
            raise StructureError("level-0 list does not match the ground set")
        for level in self.basic_levels:
            for prefix, structure in self._level_structures(level):
                for unit in structure.units():
                    if (level, prefix, unit.key) not in self._block_host:
                        raise StructureError(
                            f"basic unit {unit.key!r} at level {level} has no block host"
                        )
        for (level, prefix, key), hosts in self._stored_at.items():
            if not hosts:
                raise StructureError(f"unit {key!r} at level {level} has no copies")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BucketSkipWeb1D(n={len(self._keys)}, M={self.memory_size}, "
            f"hosts={self.host_count}, basic_levels={self.basic_levels})"
        )
