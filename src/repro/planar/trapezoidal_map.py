"""Trapezoidal maps of non-crossing segment sets (§3.3, Figure 4).

The trapezoidal map of a set ``S`` of non-crossing segments is the
subdivision of (a bounding box of) the plane obtained by shooting a
vertical ray up and down from every segment endpoint until it hits
another segment or the box boundary.  Every face of the subdivision is a
trapezoid bounded by at most two segments (top and bottom) and at most
two vertical walls.

Construction here uses a slab decomposition followed by a merge pass:

1. cut the box into vertical slabs at every endpoint x-coordinate,
2. inside each slab, stack the segments spanning it (their vertical order
   is constant because segments do not cross) — consecutive pairs bound
   one slab-trapezoid each,
3. merge horizontally adjacent slab-trapezoids that share the same top
   and bottom and are not separated by an endpoint wall.

This is an ``O(n²)``-time construction, which is irrelevant to the
paper's cost model (only messages of the *distributed* structure count)
and has the advantage of being simple enough to trust as a reference.
The number of trapezoids produced is the standard ``≤ 3n + 1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import QueryError, StructureError
from repro.planar.segments import PlanarPoint, Segment, bounding_box, segments_in_general_position


@dataclass(frozen=True)
class Trapezoid:
    """One face of a trapezoidal map.

    ``top`` / ``bottom`` are the bounding segments (``None`` means the
    bounding box edge), and ``x_left`` / ``x_right`` are the vertical
    walls.  The face is the set of points with ``x_left <= x <= x_right``
    lying between the two boundaries.
    """

    top: Segment | None
    bottom: Segment | None
    x_left: float
    x_right: float
    y_low: float
    y_high: float

    def top_y(self, x: float) -> float:
        """Height of the upper boundary at abscissa ``x``."""
        return self.top.y_at(x) if self.top is not None else self.y_high

    def bottom_y(self, x: float) -> float:
        """Height of the lower boundary at abscissa ``x``."""
        return self.bottom.y_at(x) if self.bottom is not None else self.y_low

    @property
    def width(self) -> float:
        return self.x_right - self.x_left

    @property
    def center(self) -> PlanarPoint:
        x = (self.x_left + self.x_right) / 2
        return (x, (self.bottom_y(x) + self.top_y(x)) / 2)

    # ------------------------------------------------------------------ #
    # Range protocol (the trapezoid is its own skip-web range)
    # ------------------------------------------------------------------ #
    def contains(self, point) -> bool:
        """Closed containment of a planar point."""
        if not isinstance(point, tuple) or len(point) != 2:
            return False
        x, y = point
        if not self.x_left <= x <= self.x_right:
            return False
        return self.bottom_y(x) - 1e-12 <= y <= self.top_y(x) + 1e-12

    def intersects(self, other) -> bool:
        """Open-interior overlap with another trapezoid."""
        if not isinstance(other, Trapezoid):
            return other.intersects(self)
        x_low = max(self.x_left, other.x_left)
        x_high = min(self.x_right, other.x_right)
        if x_low >= x_high:
            return False
        x_mid = (x_low + x_high) / 2
        lower = max(self.bottom_y(x_mid), other.bottom_y(x_mid))
        upper = min(self.top_y(x_mid), other.top_y(x_mid))
        return lower < upper - 1e-12

    def distance_to_point(self, point: PlanarPoint) -> float:
        """A cheap distance proxy used only to pick a walking direction."""
        x, y = point
        dx = max(self.x_left - x, 0.0, x - self.x_right)
        clamped_x = min(max(x, self.x_left), self.x_right)
        dy = max(self.bottom_y(clamped_x) - y, 0.0, y - self.top_y(clamped_x))
        return dx + dy

    def key(self) -> tuple:
        """A hashable identity stable across rebuilds of the same segment set."""
        return (
            self.top.endpoints() if self.top is not None else None,
            self.bottom.endpoints() if self.bottom is not None else None,
            self.x_left,
            self.x_right,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Trapezoid(x=[{self.x_left:.3g},{self.x_right:.3g}], "
            f"top={self.top}, bottom={self.bottom})"
        )


class TrapezoidalMap:
    """The trapezoidal map of a set of non-crossing segments.

    Parameters
    ----------
    segments:
        The input segments; validated for the general-position
        assumptions of :func:`segments_in_general_position`.
    box:
        Bounding box ``(x_min, x_max, y_min, y_max)``; computed with a
        margin when omitted.  Skip-web levels must share the same box.
    """

    def __init__(
        self,
        segments: Sequence[Segment],
        box: tuple[float, float, float, float] | None = None,
    ) -> None:
        self.segments = segments_in_general_position(segments)
        self.box = box if box is not None else bounding_box(self.segments)
        x_min, x_max, y_min, y_max = self.box
        if x_min >= x_max or y_min >= y_max:
            raise StructureError(f"degenerate bounding box {self.box}")
        for segment in self.segments:
            if not (x_min <= segment.x_min and segment.x_max <= x_max):
                raise StructureError(f"segment {segment} outside bounding box {self.box}")
        self.trapezoids = self._build()
        self._adjacency = self._build_adjacency()

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def _build(self) -> list[Trapezoid]:
        x_min, x_max, y_min, y_max = self.box
        cuts = sorted(
            {x_min, x_max}
            | {segment.x_min for segment in self.segments}
            | {segment.x_max for segment in self.segments}
        )
        endpoint_ys: dict[float, list[float]] = {}
        for segment in self.segments:
            endpoint_ys.setdefault(segment.x_min, []).append(segment.left[1])
            endpoint_ys.setdefault(segment.x_max, []).append(segment.right[1])

        # 1. slab trapezoids
        slabs: list[list[Trapezoid]] = []
        for left, right in zip(cuts, cuts[1:]):
            mid = (left + right) / 2
            spanning = [
                segment for segment in self.segments if segment.spans(left, right)
            ]
            spanning.sort(key=lambda segment: segment.y_at(mid))
            boundaries: list[Segment | None] = [None] + list(spanning) + [None]
            column: list[Trapezoid] = []
            for bottom, top in zip(boundaries, boundaries[1:]):
                column.append(
                    Trapezoid(
                        top=top,
                        bottom=bottom,
                        x_left=left,
                        x_right=right,
                        y_low=y_min,
                        y_high=y_max,
                    )
                )
            slabs.append(column)

        # 2. merge across slab boundaries where no endpoint wall separates
        merged: list[Trapezoid] = []
        open_trapezoids: dict[tuple, Trapezoid] = {}

        def boundary_key(trapezoid: Trapezoid) -> tuple:
            return (
                trapezoid.top.endpoints() if trapezoid.top is not None else None,
                trapezoid.bottom.endpoints() if trapezoid.bottom is not None else None,
            )

        for slab_index, column in enumerate(slabs):
            wall_x = cuts[slab_index]
            wall_ys = endpoint_ys.get(wall_x, [])
            next_open: dict[tuple, Trapezoid] = {}
            for trapezoid in column:
                key = boundary_key(trapezoid)
                previous = open_trapezoids.get(key)
                can_merge = previous is not None
                if can_merge:
                    # A wall exists if some endpoint at ``wall_x`` lies
                    # strictly between the two boundaries.
                    lower = trapezoid.bottom_y(wall_x)
                    upper = trapezoid.top_y(wall_x)
                    for y in wall_ys:
                        if lower + 1e-12 < y < upper - 1e-12:
                            can_merge = False
                            break
                if can_merge:
                    extended = Trapezoid(
                        top=trapezoid.top,
                        bottom=trapezoid.bottom,
                        x_left=previous.x_left,
                        x_right=trapezoid.x_right,
                        y_low=trapezoid.y_low,
                        y_high=trapezoid.y_high,
                    )
                    next_open[key] = extended
                else:
                    if previous is not None:
                        merged.append(previous)
                    next_open[key] = trapezoid
            # Anything open that did not continue into this slab is finished.
            for key, trapezoid in open_trapezoids.items():
                if key not in next_open:
                    merged.append(trapezoid)
            open_trapezoids = next_open
        merged.extend(open_trapezoids.values())
        if not merged:
            merged.append(
                Trapezoid(
                    top=None,
                    bottom=None,
                    x_left=x_min,
                    x_right=x_max,
                    y_low=y_min,
                    y_high=y_max,
                )
            )
        return merged

    def _build_adjacency(self) -> dict[tuple, list[Trapezoid]]:
        adjacency: dict[tuple, list[Trapezoid]] = {
            trapezoid.key(): [] for trapezoid in self.trapezoids
        }
        for first in self.trapezoids:
            for second in self.trapezoids:
                if first is second:
                    continue
                if self._share_wall(first, second):
                    adjacency[first.key()].append(second)
        return adjacency

    @staticmethod
    def _share_wall(first: Trapezoid, second: Trapezoid) -> bool:
        """Whether two trapezoids touch along a vertical wall."""
        if abs(first.x_right - second.x_left) > 1e-12 and abs(
            second.x_right - first.x_left
        ) > 1e-12:
            return False
        wall_x = first.x_right if abs(first.x_right - second.x_left) <= 1e-12 else first.x_left
        lower = max(first.bottom_y(wall_x), second.bottom_y(wall_x))
        upper = min(first.top_y(wall_x), second.top_y(wall_x))
        return lower < upper - 1e-12

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def locate(self, point: PlanarPoint) -> Trapezoid:
        """The trapezoid containing ``point`` (boundaries resolve to either side)."""
        x, y = point
        x_min, x_max, y_min, y_max = self.box
        if not (x_min <= x <= x_max and y_min <= y <= y_max):
            raise QueryError(f"point {point} lies outside the bounding box {self.box}")
        for trapezoid in self.trapezoids:
            if trapezoid.contains((x, y)):
                return trapezoid
        raise QueryError(f"no trapezoid contains {point} (map inconsistency)")

    def neighbors(self, trapezoid: Trapezoid) -> list[Trapezoid]:
        """Trapezoids sharing a vertical wall with ``trapezoid``."""
        return list(self._adjacency[trapezoid.key()])

    def trapezoid_count(self) -> int:
        return len(self.trapezoids)

    def conflicting_trapezoids(self, other: Trapezoid) -> list[Trapezoid]:
        """Trapezoids of this map whose interior overlaps ``other`` (Lemma 5)."""
        return [trapezoid for trapezoid in self.trapezoids if trapezoid.intersects(other)]

    def validate(self) -> None:
        """Sanity checks: count bound, coverage on sample points, disjointness."""
        n = len(self.segments)
        if len(self.trapezoids) > 3 * n + 1:
            raise StructureError(
                f"too many trapezoids: {len(self.trapezoids)} for {n} segments"
            )
        for first_index, first in enumerate(self.trapezoids):
            for second in self.trapezoids[first_index + 1 :]:
                if first.intersects(second):
                    raise StructureError(f"overlapping trapezoids: {first} and {second}")
            center = first.center
            located = self.locate(center)
            if not located.contains(center):  # pragma: no cover - defensive
                raise StructureError("locate returned a non-containing trapezoid")
