"""Non-crossing line segments in the plane.

The trapezoidal map of §3.3 is defined for a set of *disjoint* (non-
crossing) segments.  As is standard for trapezoidal maps we additionally
assume general position: no vertical segments and no two endpoints with
the same x-coordinate.  The workload generators in
:mod:`repro.workloads.planar_maps` produce inputs satisfying these
assumptions, and :func:`segments_in_general_position` lets callers check
arbitrary inputs before building a map.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import StructureError

PlanarPoint = tuple[float, float]


@dataclass(frozen=True, slots=True)
class Segment:
    """A non-vertical line segment, stored with its left endpoint first."""

    left: PlanarPoint
    right: PlanarPoint

    def __post_init__(self) -> None:
        if self.left[0] >= self.right[0]:
            raise ValueError(
                f"segment endpoints must satisfy left.x < right.x, got {self.left} / {self.right}"
            )

    @staticmethod
    def of(first: PlanarPoint, second: PlanarPoint) -> "Segment":
        """Build a segment from two endpoints in either order."""
        a = (float(first[0]), float(first[1]))
        b = (float(second[0]), float(second[1]))
        if a[0] == b[0]:
            raise ValueError(f"vertical segments are not supported: {a} / {b}")
        return Segment(left=min(a, b), right=max(a, b))

    @property
    def x_min(self) -> float:
        return self.left[0]

    @property
    def x_max(self) -> float:
        return self.right[0]

    def y_at(self, x: float) -> float:
        """Height of the segment's supporting line at abscissa ``x``."""
        (x1, y1), (x2, y2) = self.left, self.right
        if x2 == x1:  # pragma: no cover - excluded by construction
            return y1
        fraction = (x - x1) / (x2 - x1)
        return y1 + fraction * (y2 - y1)

    def spans(self, x_low: float, x_high: float) -> bool:
        """Whether the segment covers the whole slab ``[x_low, x_high]``."""
        return self.x_min <= x_low and self.x_max >= x_high

    def crosses(self, other: "Segment") -> bool:
        """Proper-intersection test (shared endpoints do not count)."""
        def orientation(p: PlanarPoint, q: PlanarPoint, r: PlanarPoint) -> float:
            return (q[0] - p[0]) * (r[1] - p[1]) - (q[1] - p[1]) * (r[0] - p[0])

        p1, p2 = self.left, self.right
        q1, q2 = other.left, other.right
        if len({p1, p2, q1, q2}) < 4:
            return False
        d1 = orientation(q1, q2, p1)
        d2 = orientation(q1, q2, p2)
        d3 = orientation(p1, p2, q1)
        d4 = orientation(p1, p2, q2)
        return ((d1 > 0) != (d2 > 0)) and ((d3 > 0) != (d4 > 0))

    def endpoints(self) -> tuple[PlanarPoint, PlanarPoint]:
        return (self.left, self.right)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Segment({self.left} -> {self.right})"


def segments_in_general_position(segments: Iterable[Segment]) -> list[Segment]:
    """Validate a segment set for trapezoidal-map construction.

    Checks that no two segments properly cross and that all endpoint
    x-coordinates are distinct (the usual general-position assumption).
    Returns the segments as a list so callers can chain the validation.
    """
    segment_list = list(segments)
    xs: list[float] = []
    for segment in segment_list:
        xs.extend((segment.x_min, segment.x_max))
    if len(set(xs)) != len(xs):
        raise StructureError("segment endpoints must have pairwise distinct x-coordinates")
    for index, first in enumerate(segment_list):
        for second in segment_list[index + 1 :]:
            if first.crosses(second):
                raise StructureError(f"segments cross: {first} and {second}")
    return segment_list


def bounding_box(
    segments: Sequence[Segment], margin: float = 1.0
) -> tuple[float, float, float, float]:
    """An axis-aligned box ``(x_min, x_max, y_min, y_max)`` enclosing all segments."""
    if not segments:
        return (-margin, margin, -margin, margin)
    xs = [value for segment in segments for value in (segment.x_min, segment.x_max)]
    ys = [value for segment in segments for value in (segment.left[1], segment.right[1])]
    return (min(xs) - margin, max(xs) + margin, min(ys) - margin, max(ys) + margin)
