"""Planar subdivisions: trapezoidal maps and their skip-webs.

Section 3.3 of the paper builds skip-webs over trapezoidal maps — the
subdivision of the plane induced by a set of non-crossing line segments
together with the vertical rays shot up and down from every segment
endpoint (Figure 4):

* :mod:`repro.planar.segments` — non-crossing line segments in general
  position.
* :mod:`repro.planar.trapezoidal_map` — the trapezoidal map itself, built
  by slab decomposition followed by merging, plus exact point location.
* :mod:`repro.planar.skip_trapezoid` — the distributed skip-web for
  planar point location (Lemma 5 and Theorem 2): the query "which face
  of the campus map am I in?" answered in ``O(log n)`` expected messages.
"""

from repro.planar.segments import Segment, segments_in_general_position
from repro.planar.trapezoidal_map import Trapezoid, TrapezoidalMap
from repro.planar.skip_trapezoid import SkipTrapezoidWeb, TrapezoidalMapStructure, Window

__all__ = [
    "Segment",
    "segments_in_general_position",
    "Trapezoid",
    "TrapezoidalMap",
    "SkipTrapezoidWeb",
    "TrapezoidalMapStructure",
    "Window",
]

from repro.api.registry import StructureSpec, register_structure


def _skiptrapezoid(items, *, network=None, seed=0, hosts=None, **options):
    return SkipTrapezoidWeb(
        items, network=network, host_count=hosts, seed=seed, **options
    )


def _skiptrapezoid_bulk(items, *, network=None, seed=0, hosts=None, **options):
    return SkipTrapezoidWeb.build_from_sorted(
        items, network=network, host_count=hosts, seed=seed, **options
    )


register_structure(
    StructureSpec(
        name="skiptrapezoid",
        cls=SkipTrapezoidWeb,
        factory=_skiptrapezoid,
        bulk_factory=_skiptrapezoid_bulk,
        description="skip-web over a trapezoidal map: planar point location (§3.3, Lemma 5)",
    )
)
