"""Skip-webs over trapezoidal maps (§3.3, Lemma 5).

:class:`TrapezoidalMapStructure` adapts
:class:`~repro.planar.trapezoidal_map.TrapezoidalMap` to the
range-determined link structure interface: node ranges are the trapezoids
themselves, link ranges are the unions of wall-adjacent trapezoid pairs.
Lemma 5 (the set-halving lemma for trapezoidal maps, including the
``1 + a + 2b + 3c`` conflict identity) is verified empirically by
``benchmarks/bench_fig4_trapezoid_halving.py``.

:class:`SkipTrapezoidWeb` is the distributed structure: planar point
location — "which face of the map contains this point?" — over ``n``
segments spread across ``n`` hosts in ``O(log n)`` expected messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Mapping, Sequence

from repro.core.link_structure import RangeDeterminedLinkStructure, RangeUnit, UnitKind
from repro.core.query import QueryResult
from repro.core.ranges import Range
from repro.core.skipweb import SkipWeb, SkipWebConfig, SkipWebStructureAdapter
from repro.core.update import UpdateResult
from repro.errors import QueryError, StructureError
from repro.net.congestion import CongestionReport
from repro.net.naming import HostId
from repro.net.network import Network
from repro.planar.segments import PlanarPoint, Segment, bounding_box
from repro.planar.trapezoidal_map import Trapezoid, TrapezoidalMap


@dataclass(frozen=True)
class TrapezoidPairRange:
    """The union of two wall-adjacent trapezoids — the range of a link."""

    first: Trapezoid
    second: Trapezoid

    def contains(self, point: Any) -> bool:
        return self.first.contains(point) or self.second.contains(point)

    def intersects(self, other: Range) -> bool:
        if isinstance(other, TrapezoidPairRange):
            return (
                self.first.intersects(other.first)
                or self.first.intersects(other.second)
                or self.second.intersects(other.first)
                or self.second.intersects(other.second)
            )
        return self.first.intersects(other) or self.second.intersects(other)

    def distance_to_point(self, point: PlanarPoint) -> float:
        return min(
            self.first.distance_to_point(point), self.second.distance_to_point(point)
        )


@dataclass(frozen=True, slots=True)
class Window:
    """A closed axis-aligned query window for segment-stabbing reporting.

    The range of a window-reporting query: the query asks for every
    trapezoid of the map whose face overlaps the window (and thereby for
    the segments bounding those faces — the segments the window
    "stabs").
    """

    x_low: float
    x_high: float
    y_low: float
    y_high: float

    def __post_init__(self) -> None:
        if self.x_low > self.x_high or self.y_low > self.y_high:
            raise ValueError(f"empty window: {self!r}")

    @property
    def center(self) -> PlanarPoint:
        return ((self.x_low + self.x_high) / 2, (self.y_low + self.y_high) / 2)

    def contains(self, point: Any) -> bool:
        if not isinstance(point, tuple) or len(point) != 2:
            return False
        x, y = point
        return self.x_low <= x <= self.x_high and self.y_low <= y <= self.y_high

    @staticmethod
    def _x_interval_satisfying(
        value_low: float,
        value_high: float,
        x_low: float,
        x_high: float,
        bound: float,
        below: bool,
    ) -> tuple[float, float] | None:
        """Where a linear boundary meets a y-bound over ``[x_low, x_high]``.

        The boundary takes values ``value_low`` / ``value_high`` at the
        interval's endpoints; returns the sub-interval where it is
        ``<= bound`` (``below``) or ``>= bound``, or ``None`` if empty.
        Sampling a single x is not enough: a slanted boundary can satisfy
        the bound near one wall only, so the crossing point must be
        solved for.
        """
        ok_low = value_low <= bound if below else value_low >= bound
        ok_high = value_high <= bound if below else value_high >= bound
        if ok_low and ok_high:
            return (x_low, x_high)
        if not ok_low and not ok_high:
            return None
        crossing = x_low + (bound - value_low) * (x_high - x_low) / (
            value_high - value_low
        )
        return (x_low, crossing) if ok_low else (crossing, x_high)

    def intersects(self, other) -> bool:
        if isinstance(other, Trapezoid):
            x_low = max(self.x_low, other.x_left)
            x_high = min(self.x_high, other.x_right)
            if x_low > x_high:
                return False
            below = self._x_interval_satisfying(
                other.bottom_y(x_low),
                other.bottom_y(x_high),
                x_low,
                x_high,
                self.y_high + 1e-12,
                below=True,
            )
            above = self._x_interval_satisfying(
                other.top_y(x_low),
                other.top_y(x_high),
                x_low,
                x_high,
                self.y_low - 1e-12,
                below=False,
            )
            if below is None or above is None:
                return False
            return max(below[0], above[0]) <= min(below[1], above[1])
        if isinstance(other, TrapezoidPairRange):
            return self.intersects(other.first) or self.intersects(other.second)
        if isinstance(other, Window):
            return (
                self.x_low <= other.x_high
                and other.x_low <= self.x_high
                and self.y_low <= other.y_high
                and other.y_low <= self.y_high
            )
        return other.intersects(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Window(x=[{self.x_low:.3g},{self.x_high:.3g}], "
            f"y=[{self.y_low:.3g},{self.y_high:.3g}])"
        )


@dataclass(frozen=True)
class PlanarLocationAnswer:
    """Answer to a planar point-location query."""

    query: PlanarPoint
    trapezoid: Trapezoid
    above_segment: Segment | None
    below_segment: Segment | None


def _node_key(trapezoid: Trapezoid) -> Hashable:
    return ("pnode", trapezoid.key())

def _link_key(first: Trapezoid, second: Trapezoid) -> Hashable:
    pair = tuple(sorted((first.key(), second.key()), key=repr))
    return ("plink", pair)


class TrapezoidalMapStructure(RangeDeterminedLinkStructure):
    """A trapezoidal map viewed as a range-determined link structure.

    Construction parameter (shared across skip-web levels):

    ``box``
        The bounding box ``(x_min, x_max, y_min, y_max)``.
    """

    name = "trapezoidal-map"

    def __init__(
        self,
        segments: Sequence[Segment],
        box: tuple[float, float, float, float],
    ) -> None:
        self._box = box
        self.map = TrapezoidalMap(segments, box=box)
        self._units: list[RangeUnit] = []
        self._units_by_key: dict[Hashable, RangeUnit] = {}
        self._adjacency: dict[Hashable, list[Hashable]] = {}
        self._collect_units()

    @classmethod
    def build(cls, items: Sequence[Any], **params: Any) -> "TrapezoidalMapStructure":
        box = params.get("box")
        if box is None:
            raise StructureError("TrapezoidalMapStructure.build requires a 'box' parameter")
        return cls(list(items), box)

    def build_params(self) -> dict[str, Any]:
        return {"box": self._box}

    # ------------------------------------------------------------------ #
    # unit collection
    # ------------------------------------------------------------------ #
    @staticmethod
    def _representative(trapezoid: Trapezoid) -> Segment | None:
        """A bounding segment of the trapezoid (owner blocking anchor)."""
        return trapezoid.bottom if trapezoid.bottom is not None else trapezoid.top

    def _collect_units(self) -> None:
        for trapezoid in self.map.trapezoids:
            unit = RangeUnit(
                key=_node_key(trapezoid),
                kind=UnitKind.NODE,
                range=trapezoid,
                payload=self._representative(trapezoid),
            )
            self._register(unit)
        seen_links: set[Hashable] = set()
        for trapezoid in self.map.trapezoids:
            for neighbor in self.map.neighbors(trapezoid):
                link_key = _link_key(trapezoid, neighbor)
                if link_key in seen_links:
                    continue
                seen_links.add(link_key)
                unit = RangeUnit(
                    key=link_key,
                    kind=UnitKind.LINK,
                    range=TrapezoidPairRange(first=trapezoid, second=neighbor),
                    payload=(
                        self._representative(trapezoid),
                        self._representative(neighbor),
                    ),
                )
                self._register(unit)
                self._connect(link_key, _node_key(trapezoid))
                self._connect(link_key, _node_key(neighbor))

    def _register(self, unit: RangeUnit) -> None:
        if unit.key in self._units_by_key:
            raise StructureError(f"duplicate trapezoid unit key {unit.key!r}")
        self._units.append(unit)
        self._units_by_key[unit.key] = unit
        self._adjacency.setdefault(unit.key, [])

    def _connect(self, first: Hashable, second: Hashable) -> None:
        self._adjacency[first].append(second)
        self._adjacency[second].append(first)

    # ------------------------------------------------------------------ #
    # RangeDeterminedLinkStructure interface
    # ------------------------------------------------------------------ #
    @property
    def items(self) -> Sequence[Segment]:
        return list(self.map.segments)

    def units(self) -> list[RangeUnit]:
        return list(self._units)

    def unit(self, key: Hashable) -> RangeUnit:
        try:
            return self._units_by_key[key]
        except KeyError as exc:
            raise StructureError(f"trapezoidal map: no unit with key {key!r}") from exc

    def neighbors(self, key: Hashable) -> list[RangeUnit]:
        try:
            neighbor_keys = self._adjacency[key]
        except KeyError as exc:
            raise StructureError(f"trapezoidal map: no unit with key {key!r}") from exc
        return [self._units_by_key[neighbor] for neighbor in neighbor_keys]

    @classmethod
    def item_to_query(cls, item: Any) -> Any:
        """Updates locate a segment by its midpoint (items are segments, queries are points)."""
        if isinstance(item, Segment):
            mid_x = (item.x_min + item.x_max) / 2
            return (mid_x, item.y_at(mid_x))
        return item

    # ------------------------------------------------------------------ #
    # range reporting
    # ------------------------------------------------------------------ #
    @classmethod
    def range_to_query(cls, query_range: Range) -> Any:
        """Anchor a window query's descent at the window centre."""
        if isinstance(query_range, Window):
            return query_range.center
        return super().range_to_query(query_range)

    def report_units(self, query_range: Range) -> list[RangeUnit]:
        """The trapezoid nodes overlapping the window, swept left to right."""
        if not isinstance(query_range, Window):
            return super().report_units(query_range)
        matched = [
            trapezoid
            for trapezoid in self.map.trapezoids
            if query_range.intersects(trapezoid)
        ]
        matched.sort(key=lambda t: (t.x_left, t.bottom_y((t.x_left + t.x_right) / 2)))
        return [self._units_by_key[_node_key(trapezoid)] for trapezoid in matched]

    def report_values(self, query_range: Range, unit: RangeUnit) -> list[Any]:
        """The visited trapezoid, when its face overlaps the window."""
        if unit.is_node and isinstance(unit.range, Trapezoid):
            if query_range.intersects(unit.range):
                return [unit.range]
        return []

    def locate(self, query: Any) -> RangeUnit:
        """The trapezoid containing the query point."""
        point = (float(query[0]), float(query[1]))
        trapezoid = self.map.locate(point)
        return self._units_by_key[_node_key(trapezoid)]

    @classmethod
    def select(cls, query: Any, candidates: Sequence[RangeUnit]) -> RangeUnit:
        point = (float(query[0]), float(query[1]))
        containing = [unit for unit in candidates if unit.range.contains(point)]
        if containing:
            for unit in containing:
                if unit.is_node:
                    return unit
            return containing[0]
        return min(
            candidates,
            key=lambda unit: unit.range.distance_to_point(point)
            if hasattr(unit.range, "distance_to_point")
            else float("inf"),
        )

    @classmethod
    def advance(
        cls,
        query: Any,
        current: RangeUnit,
        neighbors: Mapping[Hashable, Range],
    ) -> Hashable | None:
        point = (float(query[0]), float(query[1]))
        if current.is_node and current.range.contains(point):
            return None
        if current.is_link and current.range.contains(point):
            # Move onto whichever endpoint trapezoid contains the point.
            for key, rng in neighbors.items():
                if isinstance(rng, Trapezoid) and rng.contains(point):
                    return key
            return None
        # Walk towards the query through the adjacency structure.
        current_distance = (
            current.range.distance_to_point(point)
            if hasattr(current.range, "distance_to_point")
            else float("inf")
        )
        best_key: Hashable | None = None
        best_distance = current_distance
        for key, rng in neighbors.items():
            if rng.contains(point):
                return key
            if hasattr(rng, "distance_to_point"):
                distance = rng.distance_to_point(point)
                if distance < best_distance - 1e-12:
                    best_distance = distance
                    best_key = key
        return best_key

    def answer(self, query: Any, unit: RangeUnit) -> PlanarLocationAnswer:
        point = (float(query[0]), float(query[1]))
        if unit.is_node and isinstance(unit.range, Trapezoid):
            trapezoid = unit.range
        elif unit.is_link and isinstance(unit.range, TrapezoidPairRange):
            pair = unit.range
            trapezoid = pair.first if pair.first.contains(point) else pair.second
        else:  # pragma: no cover - defensive
            raise QueryError(f"cannot decode planar answer from unit {unit.key!r}")
        return PlanarLocationAnswer(
            query=point,
            trapezoid=trapezoid,
            above_segment=trapezoid.top,
            below_segment=trapezoid.bottom,
        )


class SkipTrapezoidWeb(SkipWebStructureAdapter):
    """A distributed skip-web for planar point location.

    ``n`` non-crossing segments are spread over the hosts of a simulated
    network; locating the trapezoid containing an arbitrary query point
    costs ``O(log n)`` expected messages (Theorem 2 via Lemma 5).
    Implements the :class:`repro.engine.protocol.DistributedStructure`
    protocol through the adapter mixin, so it runs under the batched
    round-based executor as well.
    """

    def _coerce_query(self, query: Any) -> tuple[float, float]:
        return (float(query[0]), float(query[1]))

    def _coerce_range(self, query_range: Any) -> Window:
        if isinstance(query_range, Window):
            return query_range
        x_low, x_high, y_low, y_high = query_range
        return Window(float(x_low), float(x_high), float(y_low), float(y_high))

    def __init__(
        self,
        segments: Sequence[Segment],
        box: tuple[float, float, float, float] | None = None,
        network: Network | None = None,
        host_count: int | None = None,
        blocking: str = "owner",
        seed: int = 0,
        margin: float = 1.0,
    ) -> None:
        segment_list = list(segments)
        if box is None:
            box = bounding_box(segment_list, margin=margin)
        self.box = box
        config = SkipWebConfig(
            host_count=host_count,
            blocking=blocking,
            seed=seed,
            structure_params={"box": box},
        )
        self.web = SkipWeb(
            TrapezoidalMapStructure, segment_list, network=network, config=config
        )

    # -- queries -------------------------------------------------------- #
    def locate(self, point: PlanarPoint, origin_host: HostId | None = None) -> QueryResult:
        """Planar point location: the trapezoid containing ``point``."""
        return self.web.query((float(point[0]), float(point[1])), origin_host=origin_host)

    def window_report(self, window: Any, origin_host: HostId | None = None):
        """Segment-stabbing window reporting: the faces overlapping ``window``.

        ``window`` is a :class:`Window` or an ``(x_low, x_high, y_low,
        y_high)`` tuple; the result's matches are the overlapping
        trapezoids (use :meth:`stabbed_segments` to reduce them to the
        distinct stabbed segments).  O(log n + k) expected messages.
        """
        return self.range_report(window, origin_host=origin_host)

    @staticmethod
    def stabbed_segments(trapezoids) -> list[Segment]:
        """The distinct segments bounding a set of reported trapezoids."""
        segments: list[Segment] = []
        seen: set[tuple] = set()
        for trapezoid in trapezoids:
            for segment in (trapezoid.top, trapezoid.bottom):
                if segment is None:
                    continue
                key = segment.endpoints()
                if key not in seen:
                    seen.add(key)
                    segments.append(segment)
        return segments

    # -- updates -------------------------------------------------------- #
    def insert(self, segment: Segment, origin_host: HostId | None = None) -> UpdateResult:
        return self.web.insert(segment, origin_host=origin_host)

    def delete(self, segment: Segment, origin_host: HostId | None = None) -> UpdateResult:
        return self.web.delete(segment, origin_host=origin_host)

    # -- accounting ------------------------------------------------------ #
    @property
    def network(self) -> Network:
        return self.web.network

    @property
    def segments(self) -> list[Segment]:
        return list(self.web.items)

    @property
    def host_count(self) -> int:
        return self.web.host_count

    @property
    def level0_map(self) -> TrapezoidalMap:
        structure: TrapezoidalMapStructure = self.web.level_structure(0, ())
        return structure.map

    def max_memory_per_host(self) -> int:
        return self.web.max_memory_per_host()

    def congestion(self) -> CongestionReport:
        return self.web.congestion()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SkipTrapezoidWeb(n={len(self.segments)}, hosts={self.host_count})"
