"""Command-line entry point: regenerate any experiment of the paper.

Examples
--------
::

    python -m repro.cli list
    python -m repro.cli table1
    python -m repro.cli fig3 --seed 7
    skipweb-repro theorem2-onedim

Each experiment prints an aligned text table; the same functions back the
``benchmarks/`` pytest modules, so numbers match between the two routes.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.bench.experiments import EXPERIMENTS
from repro.bench.reporting import format_table


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="skipweb-repro",
        description="Reproduce the tables and figures of the skip-webs paper (PODC 2005).",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["list", "all"],
        help="experiment to run ('list' shows descriptions, 'all' runs everything)",
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed (default 0)")
    return parser


def _run_one(name: str, seed: int) -> None:
    function, description = EXPERIMENTS[name]
    rows = function(seed=seed)
    print(format_table(rows, title=f"{name}: {description}"))
    print()


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        rows = [
            {"experiment": name, "description": description}
            for name, (_function, description) in sorted(EXPERIMENTS.items())
        ]
        print(format_table(rows, title="Available experiments"))
        return 0
    if args.experiment == "all":
        for name in sorted(EXPERIMENTS):
            _run_one(name, args.seed)
        return 0
    _run_one(args.experiment, args.seed)
    return 0


if __name__ == "__main__":
    sys.exit(main())
