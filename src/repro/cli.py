"""Command-line entry point: regenerate any experiment of the paper.

Examples
--------
::

    python -m repro.cli list
    python -m repro.cli --list
    python -m repro.cli structures
    python -m repro.cli table1
    python -m repro.cli fig3 --seed 7
    python -m repro.cli range-queries --sizes 48,96
    python -m repro.cli throughput --format json
    python -m repro.cli congestion-rounds --sizes 64,256 --format csv
    python -m repro.cli churn --sizes 48
    python -m repro.cli --topology clustered,geo --sizes 64
    python -m repro.cli serve --port 8642 --items 256
    python -m repro.cli hammer --url http://127.0.0.1:8642 --sessions 8
    skipweb-repro theorem2-onedim

Each experiment prints an aligned text table by default; ``--format json``
and ``--format csv`` emit machine-readable rows instead, and ``--sizes``
overrides the problem sizes of every experiment that takes them.  The
same functions back the ``benchmarks/`` pytest modules, so numbers match
between the two routes.

``structures`` lists the :mod:`repro.api` registry — every structure
family constructible via ``Cluster(structure=<name>)`` — with its
capability flags (range, updates, bulk-load, shardable, durable) as
columns; the experiments themselves are re-plumbed through that same
façade, so the registry listing is also an index into what the
experiments deploy.

``--topology`` selects the link-cost models the ``topology`` experiment
compares (``flat`` is always included as the baseline); giving the flag
without an experiment name implies ``topology``.

``--faults`` selects the message drop rates the ``faults`` experiment
sweeps (rate ``0.0`` is always included as the baseline); giving the
flag without an experiment name implies ``faults``.

``serve`` hosts the :mod:`repro.server` HTTP/JSON service layer (the
full ``Cluster`` operation surface, churn lifecycle, sessions and the
live dashboard) on stdlib ``wsgiref``; ``hammer`` is its seeded load
generator — see the "serving" option group.
"""

from __future__ import annotations

import argparse
import csv
import inspect
import io
import json
import sys
from contextlib import nullcontext
from typing import Any, Sequence

from repro.bench.experiments import EXPERIMENTS
from repro.bench.reporting import format_table
from repro.net.network import tracing_mode
from repro.net.topology import TOPOLOGY_NAMES


def _parse_sizes(text: str) -> tuple[int, ...]:
    try:
        sizes = tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"invalid sizes {text!r}: {exc}") from exc
    if not sizes or any(size <= 0 for size in sizes):
        raise argparse.ArgumentTypeError(f"sizes must be positive integers, got {text!r}")
    return sizes


def _parse_topologies(text: str) -> tuple[str, ...]:
    names = tuple(part.strip() for part in text.split(",") if part.strip())
    if not names:
        raise argparse.ArgumentTypeError(f"no topology names in {text!r}")
    unknown = [name for name in names if name not in TOPOLOGY_NAMES]
    if unknown:
        raise argparse.ArgumentTypeError(
            f"unknown topology {unknown[0]!r} (choose from {', '.join(TOPOLOGY_NAMES)})"
        )
    # Flat is always the comparison baseline: requesting clustered/geo
    # yields flat-vs-requested rows rather than an uncomparable table.
    if "flat" not in names:
        names = ("flat",) + names
    deduplicated: list[str] = []
    for name in names:
        if name not in deduplicated:
            deduplicated.append(name)
    return tuple(deduplicated)


def _parse_faults(text: str) -> tuple[float, ...]:
    try:
        rates = tuple(float(part) for part in text.split(",") if part.strip())
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"invalid drop rates {text!r}: {exc}") from exc
    if not rates or any(not 0.0 <= rate <= 1.0 for rate in rates):
        raise argparse.ArgumentTypeError(f"drop rates must be floats in [0, 1], got {text!r}")
    # Rate 0 is always the comparison baseline: the delivered-ratio and
    # retry-overhead columns only mean something against a lossless run.
    if 0.0 not in rates:
        rates = (0.0,) + rates
    deduplicated: list[float] = []
    for rate in rates:
        if rate not in deduplicated:
            deduplicated.append(rate)
    return tuple(deduplicated)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="skipweb-repro",
        description="Reproduce the tables and figures of the skip-webs paper (PODC 2005).",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        choices=sorted(EXPERIMENTS)
        + ["list", "all", "structures", "workload", "serve", "hammer"],
        help="experiment to run ('list' shows descriptions, 'all' runs everything, "
        "'structures' lists the repro.api structure registry, 'workload' runs "
        "the seeded durable workload — see --save/--resume; 'serve' hosts the "
        "HTTP/JSON service layer, 'hammer' load-tests it — see the serving group)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        dest="list_experiments",
        help="print the experiment registry (name + description) and exit",
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed (default 0)")
    parser.add_argument(
        "--format",
        choices=("table", "json", "csv"),
        default="table",
        dest="output_format",
        help="output format: aligned text table (default), JSON, or CSV",
    )
    parser.add_argument(
        "--sizes",
        type=_parse_sizes,
        default=None,
        help="comma-separated problem sizes (e.g. 64,128,256); applied to every "
        "experiment that accepts a 'sizes' (or scalar 'n') parameter",
    )
    parser.add_argument(
        "--topology",
        type=_parse_topologies,
        default=None,
        metavar="NAMES",
        help="comma-separated topologies for the 'topology' experiment "
        "(flat, clustered, geo; flat is always included as the baseline); "
        "implies the 'topology' experiment when no name is given",
    )
    parser.add_argument(
        "--faults",
        type=_parse_faults,
        default=None,
        metavar="RATES",
        help="comma-separated message drop rates for the 'faults' experiment "
        "(floats in [0, 1]; 0.0 is always included as the baseline); "
        "implies the 'faults' experiment when no name is given",
    )
    parser.add_argument(
        "--profile",
        type=int,
        nargs="?",
        const=20,
        default=None,
        metavar="N",
        help="run each experiment under cProfile and print the top N functions "
        "by cumulative time to stderr (default N: 20)",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="force full message tracing (experiments default to the faster "
        "zero-allocation ledger substrate; counters are identical either way)",
    )
    durability = parser.add_argument_group("durability ('workload' experiment only)")
    durability.add_argument(
        "--save",
        metavar="PATH",
        default=None,
        help="journal the workload to PATH (a .jsonl directory, or a "
        ".sqlite/.sqlite3/.db file) so a killed run can be resumed",
    )
    durability.add_argument(
        "--resume",
        metavar="PATH",
        default=None,
        help="recover a previously --save'd workload from PATH and run it to "
        "completion; the final report is byte-identical to an uninterrupted run",
    )
    durability.add_argument(
        "--kill-after",
        type=int,
        default=None,
        metavar="K",
        help="SIGKILL the process the instant workload step K commits "
        "(requires --save; used by the recovery-gate CI job)",
    )
    durability.add_argument(
        "--snapshot-every",
        type=int,
        default=0,
        metavar="N",
        help="write a full-state snapshot every N journaled actions "
        "(default 0: log-only, recovery replays from genesis)",
    )
    durability.add_argument(
        "--steps", type=int, default=12, metavar="N", help="workload steps (default 12)"
    )
    durability.add_argument(
        "--structure",
        default="skipweb1d",
        metavar="NAME",
        help="structure family the workload deploys (default skipweb1d; "
        "see the 'structures' experiment for the registry)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="run read-only batches through the sharded multi-worker executor "
        "with N fork workers (counters stay identical to serial runs; "
        "mutating batches and churn remain serial)",
    )
    serving = parser.add_argument_group("serving ('serve' and 'hammer' only)")
    serving.add_argument(
        "--host", default="127.0.0.1", help="bind/connect address (default 127.0.0.1)"
    )
    serving.add_argument(
        "--port",
        type=int,
        default=8642,
        help="serve: bind port, 0 for OS-assigned (see --ready-file); "
        "hammer: connect port when no --url is given (default 8642)",
    )
    serving.add_argument(
        "--ready-file",
        metavar="PATH",
        default=None,
        help="serve: write 'host:port' to PATH once the socket is bound "
        "(the CI gate polls it instead of racing the listener)",
    )
    serving.add_argument(
        "--cluster",
        default="default",
        metavar="NAME",
        help="cluster name to serve initially / to hammer (default 'default')",
    )
    serving.add_argument(
        "--items",
        type=int,
        default=128,
        metavar="N",
        help="serve: size of the generated uniform ground set; hammer: "
        "regenerate the same N keys client-side so gets hit (default 128)",
    )
    serving.add_argument(
        "--spec",
        metavar="JSON",
        default=None,
        help="serve: full cluster spec as a JSON object (same shape as "
        "POST /clusters; overrides --structure/--items/--cluster/--seed)",
    )
    serving.add_argument(
        "--url",
        default=None,
        help="hammer: server base URL (default http://HOST:PORT)",
    )
    serving.add_argument(
        "--sessions",
        type=int,
        default=4,
        metavar="N",
        help="hammer: concurrent client sessions (default 4)",
    )
    serving.add_argument(
        "--ops",
        type=int,
        default=25,
        metavar="N",
        help="hammer: operations per session (default 25)",
    )
    serving.add_argument(
        "--mix",
        choices=("read", "write"),
        default="read",
        help="hammer: operation mix; 'read' (default) is interleaving-"
        "independent and backs the byte-identity gate, 'write' adds "
        "inserts/deletes for soak testing",
    )
    serving.add_argument(
        "--key-seed",
        type=int,
        default=None,
        metavar="SEED",
        help="hammer: seed of the served ground set when it differs from "
        "--seed (default: --seed)",
    )
    serving.add_argument(
        "--determinism-file",
        metavar="PATH",
        default=None,
        help="hammer: write the deterministic per-session report (no "
        "wall-clock fields) to PATH; two seeded runs must byte-match",
    )
    serving.add_argument(
        "--markdown",
        metavar="PATH",
        default=None,
        help="hammer: write a GitHub job-summary markdown table to PATH "
        "('-' for stdout)",
    )
    serving.add_argument(
        "--expect-ok",
        action="store_true",
        help="hammer: exit 1 unless every request succeeded and every "
        "operation handle came back status 'ok' (the CI serve-gate)",
    )
    return parser


def _experiment_kwargs(
    function,
    seed: int,
    sizes: tuple[int, ...] | None,
    topologies: tuple[str, ...] | None = None,
    drop_rates: tuple[float, ...] | None = None,
) -> dict[str, Any]:
    kwargs: dict[str, Any] = {"seed": seed}
    parameters = inspect.signature(function).parameters
    if sizes is not None:
        if "sizes" in parameters:
            kwargs["sizes"] = sizes
        elif "n" in parameters:
            kwargs["n"] = sizes[0]
    if topologies is not None and "topologies" in parameters:
        kwargs["topologies"] = topologies
    if drop_rates is not None and "drop_rates" in parameters:
        kwargs["drop_rates"] = drop_rates
    return kwargs


def _emit(rows: list[dict[str, Any]], name: str, description: str, output_format: str) -> None:
    if output_format == "json":
        print(
            json.dumps({"experiment": name, "description": description, "rows": rows}, default=str)
        )
        return
    if output_format == "csv":
        buffer = io.StringIO()
        columns = list(rows[0].keys()) if rows else []
        # Rows that already carry an 'experiment' column (the `list`
        # pseudo-experiment) must not get a duplicate one prepended.
        fieldnames = columns if "experiment" in columns else ["experiment"] + columns
        writer = csv.DictWriter(buffer, fieldnames=fieldnames)
        writer.writeheader()
        for row in rows:
            writer.writerow({"experiment": name, **row})
        sys.stdout.write(buffer.getvalue())
        return
    print(format_table(rows, title=f"{name}: {description}"))
    print()


def _run_one(
    name: str,
    seed: int,
    output_format: str,
    sizes: tuple[int, ...] | None,
    profile: int | None = None,
    topologies: tuple[str, ...] | None = None,
    drop_rates: tuple[float, ...] | None = None,
) -> None:
    function, description = EXPERIMENTS[name]
    kwargs = _experiment_kwargs(function, seed, sizes, topologies, drop_rates)
    if profile is not None:
        rows = _run_profiled(function, kwargs, name, profile)
    else:
        rows = function(**kwargs)
    _emit(rows, name, description, output_format)


def _run_profiled(function, kwargs, name: str, top: int) -> list[dict[str, Any]]:
    """Run one experiment under cProfile, reporting the top-N to stderr."""
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        rows = function(**kwargs)
    finally:
        profiler.disable()
    stats = pstats.Stats(profiler, stream=sys.stderr).sort_stats("cumulative")
    print(f"--- cProfile: {name} (top {top} by cumulative time) ---", file=sys.stderr)
    stats.print_stats(top)
    return rows


def _run_workload(args: argparse.Namespace) -> int:
    """Run (or resume) the seeded durable workload; see repro.storage.workload.

    The report row contains nothing run-path-dependent, so the JSON/CSV
    output of a killed-and-resumed run is byte-identical to an
    uninterrupted one — the recovery-gate CI job compares them with cmp.
    """
    from repro.storage.workload import resume_workload, run_workload

    if args.resume is not None:
        rows = resume_workload(args.resume)
    else:
        rows = run_workload(
            structure=args.structure,
            steps=args.steps,
            seed=args.seed,
            storage=args.save,
            snapshot_every=args.snapshot_every,
            kill_after=args.kill_after,
        )
    # One fixed description for both paths: --format json embeds it, and
    # the recovery gate byte-compares resumed vs uninterrupted output.
    _emit(rows, "workload", "Seeded durable workload", args.output_format)
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    """Host the HTTP/JSON service layer until interrupted."""
    from repro.server import create_app, serve_forever

    if args.spec is not None:
        try:
            spec = json.loads(args.spec)
        except json.JSONDecodeError as exc:
            print(f"--spec is not valid JSON: {exc}", file=sys.stderr)
            return 2
        if not isinstance(spec, dict):
            print("--spec must be a JSON object", file=sys.stderr)
            return 2
    else:
        spec = {
            "name": args.cluster,
            "structure": args.structure,
            "generate": {"kind": "uniform", "count": args.items, "seed": args.seed},
            "seed": args.seed,
        }
        if args.workers is not None:
            spec["workers"] = args.workers
    app = create_app(initial=[spec])
    where = f"http://{args.host}:{args.port}" if args.port else f"{args.host}:<os-assigned>"
    print(
        f"serving cluster {spec.get('name', 'default')!r} "
        f"({spec.get('structure', 'skipweb1d')}) on {where} — dashboard at /",
        file=sys.stderr,
    )
    serve_forever(app, args.host, args.port, ready_file=args.ready_file)
    return 0


def _run_hammer(args: argparse.Namespace) -> int:
    """Drive the seeded load generator against a running server."""
    from repro.server import run_hammer

    url = args.url if args.url is not None else f"http://{args.host}:{args.port}"
    report = run_hammer(
        url,
        cluster=args.cluster,
        sessions=args.sessions,
        ops=args.ops,
        seed=args.seed,
        mix=args.mix,
        items=args.items,
        key_seed=args.key_seed if args.key_seed is not None else args.seed,
    )
    _emit(
        report.summary_rows(),
        "hammer",
        f"Seeded HTTP load generator against {url}",
        args.output_format,
    )
    if args.determinism_file is not None:
        with open(args.determinism_file, "w", encoding="utf-8") as handle:
            json.dump(report.deterministic_report(), handle, sort_keys=True)
            handle.write("\n")
    if args.markdown is not None:
        if args.markdown == "-":
            sys.stdout.write(report.markdown())
        else:
            with open(args.markdown, "w", encoding="utf-8") as handle:
                handle.write(report.markdown())
    if args.expect_ok and not report.all_ok:
        degraded = {
            status: count
            for status, count in report.by_op_status.items()
            if status != "ok"
        }
        print(
            f"hammer: --expect-ok failed: {report.transport_errors} transport "
            f"error(s), degraded statuses {degraded}",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.topology is not None and args.experiment is None:
        args.experiment = "topology"
    if args.topology is not None and args.experiment not in ("topology", "all"):
        parser.error("--topology only applies to the 'topology' experiment")
    if args.faults is not None and args.experiment is None:
        args.experiment = "faults"
    if args.faults is not None and args.experiment not in ("faults", "all"):
        parser.error("--faults only applies to the 'faults' experiment")
    if args.experiment is None and not args.list_experiments:
        parser.error("an experiment name is required (or use --list)")
    if args.list_experiments and args.experiment not in (None, "list"):
        parser.error("--list cannot be combined with an experiment name")
    if args.list_experiments or args.experiment == "list":
        rows = [
            {"experiment": name, "description": description}
            for name, (_function, description) in sorted(EXPERIMENTS.items())
        ]
        if args.output_format == "table":
            print(format_table(rows, title="Available experiments"))
        else:
            _emit(rows, "list", "Available experiments", args.output_format)
        return 0
    if args.experiment == "serve":
        return _run_serve(args)
    if args.experiment == "hammer":
        return _run_hammer(args)
    if args.experiment == "structures":
        from repro.api import structure_specs

        # Capability flags are real booleans in the machine-readable
        # formats (JSON true/false, CSV True/False); only the aligned
        # table renders them as yes/no for human eyes.
        flags = ("range", "updates", "bulk_load", "shardable", "durable")
        rows = [
            {
                "structure": name,
                "class": spec.cls.__name__,
                "range": spec.supports_range,
                "updates": spec.supports_updates,
                "bulk_load": spec.bulk_factory is not None,
                "shardable": spec.shardable,
                "durable": spec.durable,
                "description": spec.description,
            }
            for name, spec in sorted(structure_specs().items())
        ]
        if args.output_format == "table":
            display = [
                {
                    **row,
                    **{flag: "yes" if row[flag] else "no" for flag in flags},
                }
                for row in rows
            ]
            print(format_table(display, title="Registered structures (repro.api.Cluster)"))
        else:
            _emit(rows, "structures", "Registered structures", args.output_format)
        return 0
    if args.experiment == "workload" or args.resume is not None:
        if args.resume is not None and args.experiment not in (None, "workload"):
            parser.error("--resume only applies to the 'workload' experiment")
        if args.resume is not None and args.save is not None:
            parser.error("--save and --resume are mutually exclusive")
        if args.kill_after is not None and args.save is None:
            parser.error("--kill-after requires --save (nothing would survive)")
        return _run_workload(args)
    if args.workers is not None:
        from repro.api.cluster import set_default_workers

        set_default_workers(args.workers)
    with tracing_mode() if args.trace else nullcontext():
        if args.experiment == "all":
            for name in sorted(EXPERIMENTS):
                _run_one(
                    name,
                    args.seed,
                    args.output_format,
                    args.sizes,
                    args.profile,
                    args.topology,
                    args.faults,
                )
            return 0
        _run_one(
            args.experiment,
            args.seed,
            args.output_format,
            args.sizes,
            args.profile,
            args.topology,
            args.faults,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
