"""Pluggable network topologies: link costs and host clustering.

Every experiment before this module ran on an implicitly *flat* network:
:class:`~repro.net.network.Network` charged every cross-host hop cost 1
and tallied congestion per host only.  This module extracts that
assumption into one seam — the :class:`Topology` ABC — so the same
structures and experiments can run over non-uniform layouts:

* :class:`FlatTopology` — the paper's model and the default: every link
  costs 1, one cluster.  A network constructed *without* a topology is
  byte-identical (on every counter) to one constructed before this seam
  existed; a network given an explicit ``FlatTopology`` additionally
  grows per-link / per-cluster aggregates whose weights are all 1.
* :class:`ClusteredTopology` — the data-center layout: hosts are
  assigned to ``clusters`` racks by id (``host % clusters``, stable
  under churn), intra-cluster links are cheap and inter-cluster links
  carry one uniform weight.
* :class:`GeoTopology` — the geo-distributed layout: hosts are placed
  into regions by a seeded generator
  (:func:`repro.workloads.geo_region`), and a per-region-pair weight
  matrix prices every link.  Placement is a pure function of
  ``(seed, host, regions)``, so hosts that join later land in a
  deterministic region and a recovered run re-derives the same map.

Topologies never change *routing* — which hosts a walk visits is the
structure's business — only the **cost model**: what each hop is worth
(``link_cost``), and how delivered load aggregates (``cluster_of``).
Message counts are therefore identical across topologies; the new
observables are weighted latency and per-link / per-cluster congestion.

A topology is pickled with its network (snapshots restore it), and
:func:`topology_from_config` reconstructs one from the portable
``describe()`` dict the durability layer journals, so
``Cluster.recover()`` can refuse a store whose snapshot and journal
disagree about the layout.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Mapping, Sequence

from repro.net.naming import HostId


class Topology(ABC):
    """Link-cost and clustering policy of a simulated network.

    Implementations must be deterministic pure functions of their
    construction parameters (plus the host id), picklable, and cheap:
    :meth:`link_cost` sits on the per-delivery hot path.
    """

    #: Portable name of the layout family (``describe()['kind']``).
    kind: str = "abstract"

    @abstractmethod
    def link_cost(self, src: HostId, dst: HostId) -> int:
        """Weight of one message crossing the ``src -> dst`` link (>= 1)."""

    @abstractmethod
    def cluster_of(self, host: HostId) -> int:
        """The cluster (rack, region) the host belongs to."""

    @abstractmethod
    def describe(self) -> dict[str, Any]:
        """Portable JSON-able construction record (see
        :func:`topology_from_config`)."""

    @property
    def is_flat(self) -> bool:
        """Whether every link costs 1 (lets hot paths skip the lookup)."""
        return False

    # -- membership hooks ------------------------------------------------ #
    def on_host_added(self, host_id: HostId) -> None:
        """Called by the network after ``host_id`` joined."""

    def on_host_removed(self, host_id: HostId) -> None:
        """Called by the network after ``host_id`` left."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        fields = ", ".join(
            f"{key}={value!r}"
            for key, value in self.describe().items()
            if key != "kind"
        )
        return f"{type(self).__name__}({fields})"


class FlatTopology(Topology):
    """The paper's model: every inter-host link costs 1, one cluster."""

    kind = "flat"

    def link_cost(self, src: HostId, dst: HostId) -> int:
        return 1

    def cluster_of(self, host: HostId) -> int:
        return 0

    @property
    def is_flat(self) -> bool:
        return True

    def describe(self) -> dict[str, Any]:
        return {"kind": "flat"}

    def __eq__(self, other: Any) -> bool:
        return isinstance(other, FlatTopology)

    def __hash__(self) -> int:  # pragma: no cover - trivial
        return hash(FlatTopology)


class ClusteredTopology(Topology):
    """Data-center layout: cheap intra-cluster, weighted inter-cluster links.

    Hosts are assigned round-robin by id (``host % clusters``), which is
    stable under churn: a host's cluster never depends on who joined or
    left before it, so serial, sharded and recovered runs all agree.
    """

    kind = "clustered"

    def __init__(
        self, clusters: int = 4, intra_cost: int = 1, inter_cost: int = 8
    ) -> None:
        if clusters < 1:
            raise ValueError(f"clusters must be >= 1, got {clusters}")
        if intra_cost < 1 or inter_cost < 1:
            raise ValueError(
                f"link costs must be >= 1, got intra={intra_cost}, inter={inter_cost}"
            )
        self.clusters = clusters
        self.intra_cost = intra_cost
        self.inter_cost = inter_cost

    def link_cost(self, src: HostId, dst: HostId) -> int:
        if src % self.clusters == dst % self.clusters:
            return self.intra_cost
        return self.inter_cost

    def cluster_of(self, host: HostId) -> int:
        return host % self.clusters

    def describe(self) -> dict[str, Any]:
        return {
            "kind": "clustered",
            "clusters": self.clusters,
            "intra_cost": self.intra_cost,
            "inter_cost": self.inter_cost,
        }

    def __eq__(self, other: Any) -> bool:
        return (
            isinstance(other, ClusteredTopology)
            and self.describe() == other.describe()
        )

    def __hash__(self) -> int:  # pragma: no cover - trivial
        return hash((self.clusters, self.intra_cost, self.inter_cost))


class GeoTopology(Topology):
    """Geo-distributed layout: seeded region placement, per-link weight matrix.

    ``weights[i][j]`` prices a message from region ``i`` to region ``j``;
    omitted, a seeded matrix is generated via
    :func:`repro.workloads.geo_weight_matrix`.  Host placement is the
    pure function :func:`repro.workloads.geo_region` of
    ``(seed, host, regions)`` — independent of join order — memoized per
    host; the membership hooks keep the memo tidy, never change it.
    """

    kind = "geo"

    def __init__(
        self,
        regions: int = 3,
        seed: int = 0,
        weights: Sequence[Sequence[int]] | None = None,
    ) -> None:
        if regions < 1:
            raise ValueError(f"regions must be >= 1, got {regions}")
        from repro.workloads import geo_weight_matrix

        if weights is None:
            weights = geo_weight_matrix(regions, seed=seed)
        matrix = tuple(tuple(int(cost) for cost in row) for row in weights)
        if len(matrix) != regions or any(len(row) != regions for row in matrix):
            raise ValueError(
                f"weights must be a {regions}x{regions} matrix, got "
                f"{len(matrix)} row(s)"
            )
        if any(cost < 1 for row in matrix for cost in row):
            raise ValueError("every link weight must be >= 1")
        self.regions = regions
        self.seed = seed
        self.weights = matrix
        self._placement: dict[HostId, int] = {}

    def cluster_of(self, host: HostId) -> int:
        region = self._placement.get(host)
        if region is None:
            from repro.workloads import geo_region

            region = geo_region(host, self.regions, seed=self.seed)
            self._placement[host] = region
        return region

    def link_cost(self, src: HostId, dst: HostId) -> int:
        return self.weights[self.cluster_of(src)][self.cluster_of(dst)]

    def on_host_added(self, host_id: HostId) -> None:
        self.cluster_of(host_id)  # warm the memo deterministically

    def on_host_removed(self, host_id: HostId) -> None:
        self._placement.pop(host_id, None)

    def placement(self, host_ids: Sequence[HostId]) -> dict[HostId, int]:
        """The region of every listed host (for tables and examples)."""
        return {host: self.cluster_of(host) for host in host_ids}

    def describe(self) -> dict[str, Any]:
        return {
            "kind": "geo",
            "regions": self.regions,
            "seed": self.seed,
            "weights": [list(row) for row in self.weights],
        }

    def __eq__(self, other: Any) -> bool:
        return isinstance(other, GeoTopology) and self.describe() == other.describe()

    def __hash__(self) -> int:  # pragma: no cover - trivial
        return hash((self.regions, self.seed, self.weights))


#: Names accepted by :func:`resolve_topology` (and the CLI's --topology).
TOPOLOGY_NAMES = ("flat", "clustered", "geo")


def resolve_topology(
    spec: "str | Topology | None", seed: int = 0
) -> Topology | None:
    """Resolve a topology argument: ``None``, a name, or an instance.

    ``None`` stays ``None`` — the network's implicit flat default, with
    no per-link accounting.  A name constructs that layout's default
    parameterisation (``"geo"`` seeds its placement and weight matrix
    from ``seed``); an instance passes through.
    """
    if spec is None or isinstance(spec, Topology):
        return spec
    if spec == "flat":
        return FlatTopology()
    if spec == "clustered":
        return ClusteredTopology()
    if spec == "geo":
        return GeoTopology(seed=seed)
    raise ValueError(
        f"unknown topology {spec!r}; expected one of {TOPOLOGY_NAMES} "
        "or a Topology instance"
    )


def topology_from_config(config: "Mapping[str, Any] | None") -> Topology | None:
    """Rebuild a topology from a journaled ``describe()`` dict.

    The inverse of :meth:`Topology.describe`: the durability layer
    stores the portable dict in the cluster's create record and snapshot
    config, and recovery reconstructs the layout from it (``None`` means
    the implicit flat default).
    """
    if config is None:
        return None
    kind = config.get("kind")
    if kind == "flat":
        return FlatTopology()
    if kind == "clustered":
        return ClusteredTopology(
            clusters=config["clusters"],
            intra_cost=config["intra_cost"],
            inter_cost=config["inter_cost"],
        )
    if kind == "geo":
        return GeoTopology(
            regions=config["regions"],
            seed=config["seed"],
            weights=config["weights"],
        )
    raise ValueError(f"unknown topology config kind {kind!r}")
