"""Messages exchanged between hosts.

Messages are the unit of cost in the paper: the query cost ``Q(n)`` and
update cost ``U(n)`` are both defined as *numbers of messages* (§1.1).
The simulator therefore records every message explicitly, tagged with a
:class:`MessageKind` so benchmarks can break costs down by purpose
(query routing, update propagation, structure construction, ...).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Any, Iterable, Iterator

from repro.net.naming import HostId


class MessageKind(enum.Enum):
    """Why a message was sent.

    The paper only distinguishes query messages from update messages; the
    extra kinds let benchmarks exclude one-time construction traffic and
    let tests assert that, e.g., a pure query never generates update
    traffic.
    """

    QUERY = "query"
    """Routing a query between hosts (contributes to ``Q(n)``)."""

    UPDATE = "update"
    """Propagating an insertion or deletion (contributes to ``U(n)``)."""

    CONSTRUCTION = "construction"
    """One-time traffic while building a structure; not part of ``Q``/``U``."""

    CONTROL = "control"
    """Anything else (membership, maintenance, failure probes)."""


@dataclass(frozen=True, slots=True)
class Message:
    """A single message from ``src`` to ``dst``.

    The payload is opaque to the network; structures put whatever routing
    state they need in it.  ``seq`` is a globally increasing sequence
    number assigned by the :class:`~repro.net.network.Network`, useful for
    ordering assertions in tests.
    """

    seq: int
    src: HostId
    dst: HostId
    kind: MessageKind
    payload: Any = None

    @property
    def is_local(self) -> bool:
        """``True`` when source and destination are the same host.

        The network never creates such messages (local work is free in the
        cost model); the property exists for defensive assertions.
        """
        return self.src == self.dst


class MessageLog:
    """An append-only log of messages with cheap per-kind counters.

    The log can be bounded (``keep_messages=False``) so that very large
    benchmark runs only pay for counters, not for storing every message
    object.
    """

    def __init__(self, keep_messages: bool = True) -> None:
        self._keep_messages = keep_messages
        self._messages: list[Message] = []
        self._counts: dict[MessageKind, int] = {kind: 0 for kind in MessageKind}
        self._per_host_received: dict[HostId, int] = {}
        self._per_host_sent: dict[HostId, int] = {}
        self._seq = itertools.count()
        # Fault-injection tallies (repro.net.faults).  Dropped/delayed
        # deliveries are *not* counted as messages — they never reached
        # their destination this round — so they get their own counters.
        self._dropped = 0
        self._duplicated = 0
        self._delayed = 0

    def record(self, src: HostId, dst: HostId, kind: MessageKind, payload: Any = None) -> Message:
        """Create, count and (optionally) store a message."""
        message = Message(seq=next(self._seq), src=src, dst=dst, kind=kind, payload=payload)
        self._counts[kind] += 1
        self._per_host_received[dst] = self._per_host_received.get(dst, 0) + 1
        self._per_host_sent[src] = self._per_host_sent.get(src, 0) + 1
        if self._keep_messages:
            self._messages.append(message)
        return message

    def tally(self, src: HostId, dst: HostId, kind: MessageKind) -> None:
        """Count one message without materialising a :class:`Message`.

        The ledger-mode fast path of :class:`repro.net.network.Network`:
        every counter (per-kind, per-host sent/received, total) advances
        exactly as :meth:`record` would advance it, but no message object
        is allocated and nothing is appended to the stored-message list.
        """
        self._counts[kind] += 1
        self._per_host_received[dst] = self._per_host_received.get(dst, 0) + 1
        self._per_host_sent[src] = self._per_host_sent.get(src, 0) + 1

    def __setstate__(self, state: dict[str, Any]) -> None:
        # Snapshots written before the fault-injection subsystem carry
        # logs without the fault tallies; back-fill zeros on unpickle.
        self.__dict__.update(state)
        for attribute in ("_dropped", "_duplicated", "_delayed"):
            self.__dict__.setdefault(attribute, 0)

    def __len__(self) -> int:
        return sum(self._counts.values())

    def __iter__(self) -> Iterator[Message]:
        return iter(self._messages)

    @property
    def messages(self) -> list[Message]:
        """The stored messages (empty when ``keep_messages`` is ``False``)."""
        return list(self._messages)

    def count(self, kind: MessageKind | None = None) -> int:
        """Total number of messages, optionally restricted to one kind."""
        if kind is None:
            return len(self)
        return self._counts[kind]

    def counts_by_kind(self) -> dict[MessageKind, int]:
        """A copy of the per-kind counters."""
        return dict(self._counts)

    def received_by(self, host: HostId) -> int:
        """Number of messages delivered to ``host`` (query-load congestion)."""
        return self._per_host_received.get(host, 0)

    def sent_by(self, host: HostId) -> int:
        """Number of messages originated by ``host``."""
        return self._per_host_sent.get(host, 0)

    @property
    def dropped(self) -> int:
        """Deliveries dropped by an installed fault plan."""
        return self._dropped

    @property
    def duplicated(self) -> int:
        """Deliveries duplicated by an installed fault plan."""
        return self._duplicated

    @property
    def delayed(self) -> int:
        """Deliveries deferred to a later round by an installed fault plan."""
        return self._delayed

    def note_drop(self) -> None:
        """Tally one fault-injected drop (no message is recorded)."""
        self._dropped += 1

    def note_duplicate(self) -> None:
        """Tally one fault-injected duplication (the copy is recorded too)."""
        self._duplicated += 1

    def note_delay(self) -> None:
        """Tally one fault-injected delivery deferral."""
        self._delayed += 1

    def busiest_hosts(self, top: int = 5) -> list[tuple[HostId, int]]:
        """The ``top`` hosts by received-message count, most loaded first."""
        ranked = sorted(self._per_host_received.items(), key=lambda item: item[1], reverse=True)
        return ranked[:top]

    def clear(self) -> None:
        """Forget all messages and reset every counter."""
        self._messages.clear()
        self._counts = {kind: 0 for kind in MessageKind}
        self._per_host_received.clear()
        self._per_host_sent.clear()
        self._dropped = 0
        self._duplicated = 0
        self._delayed = 0

    def extend_counts(self, other: "MessageLog") -> None:
        """Merge another log's counters into this one (used by harnesses)."""
        for kind, value in other._counts.items():
            self._counts[kind] += value
        for host, value in other._per_host_received.items():
            self._per_host_received[host] = self._per_host_received.get(host, 0) + value
        for host, value in other._per_host_sent.items():
            self._per_host_sent[host] = self._per_host_sent.get(host, 0) + value
        self._dropped += other._dropped
        self._duplicated += other._duplicated
        self._delayed += other._delayed


def total_messages(logs: Iterable[MessageLog], kind: MessageKind | None = None) -> int:
    """Sum message counts across several logs."""
    return sum(log.count(kind) for log in logs)
