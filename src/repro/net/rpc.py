"""Traversal helpers: walking distributed structures honestly.

Every distributed structure in this package searches by following
pointers (addresses).  Whether a pointer dereference costs a message
depends only on whether the pointer crosses hosts.  Writing that charging
logic by hand in every structure invites mistakes, so structures use a
:class:`Traversal` cursor instead:

* the cursor remembers the host currently executing the search,
* :meth:`Traversal.visit` dereferences an address, charging exactly one
  message when the address lives on a different host, and moves the
  cursor there,
* :meth:`Traversal.peek` dereferences without moving (used by
  neighbour-of-neighbour routing, where a host *stores copies of* its
  neighbours' pointers and therefore consults them locally).

:class:`RemoteRef` is a tiny convenience wrapper pairing an address with
the network, for structures that want attribute-style dereferencing.
"""

from __future__ import annotations

from typing import Any

from repro.net.message import MessageKind
from repro.net.naming import Address, HostId


class Traversal:
    """A cursor over the network that charges messages for host crossings.

    Parameters
    ----------
    network:
        The :class:`repro.net.network.Network` to account against.
    origin:
        Host where the operation starts (the paper assumes every host has
        a local "root" pointer from which its searches begin).
    kind:
        The :class:`MessageKind` to charge hops under; queries and updates
        use different kinds so ``Q(n)`` and ``U(n)`` can be measured
        independently.
    """

    def __init__(
        self,
        network,
        origin: HostId,
        kind: MessageKind = MessageKind.QUERY,
    ) -> None:
        self._network = network
        self._current: HostId = origin
        self._kind = kind
        self._hops = 0
        self._path: list[HostId] = [origin]

    @property
    def current_host(self) -> HostId:
        """The host currently executing the operation."""
        return self._current

    @property
    def hops(self) -> int:
        """Number of messages charged so far by this traversal."""
        return self._hops

    @property
    def path(self) -> list[HostId]:
        """Sequence of hosts visited (consecutive duplicates collapsed)."""
        return list(self._path)

    def visit(self, address: Address, payload: Any = None) -> Any:
        """Dereference ``address``, moving the cursor to its host.

        Charges one message when the address is on a different host than
        the cursor's current position; local dereferences are free.
        """
        if address.host != self._current:
            self._network.send(self._current, address.host, kind=self._kind, payload=payload)
            self._hops += 1
            self._current = address.host
            self._path.append(address.host)
        return self._network.load(address)

    def peek(self, address: Address) -> Any:
        """Dereference ``address`` without moving and without charging.

        Only correct when the caller holds a *local copy* of the data at
        ``address`` (e.g. neighbour-of-neighbour tables, §1.2) or when the
        address is local; the structures document which case applies.
        """
        return self._network.load(address)

    def hop_to(self, host: HostId, payload: Any = None) -> None:
        """Move the cursor to ``host`` explicitly, charging one message if remote."""
        if host != self._current:
            self._network.send(self._current, host, kind=self._kind, payload=payload)
            self._hops += 1
            self._current = host
            self._path.append(host)

    def reply_to(self, host: HostId, payload: Any = None) -> None:
        """Send a final answer back to ``host`` (one message if remote).

        Query benchmarks in the paper count only the forward routing path,
        so structures call this only when a caller explicitly asks for the
        answer to be returned to the originator.
        """
        self.hop_to(host, payload=payload)


class RemoteRef:
    """An address bound to its network, dereferencable on demand.

    ``RemoteRef`` does *not* charge messages — it is a convenience for
    construction-time code and tests.  Runtime search paths must go
    through :class:`Traversal`.
    """

    __slots__ = ("_network", "address")

    def __init__(self, network, address: Address) -> None:
        self._network = network
        self.address = address

    def get(self) -> Any:
        """Return the referenced item."""
        return self._network.load(self.address)

    @property
    def host(self) -> HostId:
        return self.address.host

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RemoteRef({self.address!r})"
