"""Hosts: slot-addressed local stores with a memory budget.

The paper's parameter ``M`` is "the maximum memory size of a host",
measured as "the number of data items, data structure nodes, pointers,
and host IDs that any host can store" (§1.1).  :class:`Host` therefore
counts *items stored*, not bytes.  Each stored item occupies one slot;
the number of occupied slots is the host's memory usage.

Structures may additionally register *references* (pointers held by this
host to items elsewhere, and pointers held elsewhere to items on this
host) so that the congestion measure ``C(n)`` of §1.1 can be computed;
see :mod:`repro.net.congestion`.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterator

from repro.errors import AddressError, HostMemoryExceeded
from repro.net.naming import Address, HostId


class Host:
    """A single peer in the simulated network.

    Parameters
    ----------
    host_id:
        Unique identifier of this host.
    memory_limit:
        Maximum number of items this host may store (the paper's ``M``).
        ``None`` means unbounded, which is convenient for baselines whose
        memory usage is being *measured* rather than enforced.
    """

    def __init__(self, host_id: HostId, memory_limit: int | None = None) -> None:
        if memory_limit is not None and memory_limit <= 0:
            raise ValueError(f"memory_limit must be positive or None, got {memory_limit}")
        self.host_id = host_id
        self.memory_limit = memory_limit
        self._slots: dict[int, Any] = {}
        self._next_slot = itertools.count()
        # Reference accounting for the congestion measure C(n).
        self._out_references = 0   # pointers stored here that target other hosts
        self._in_references = 0    # pointers stored elsewhere that target this host
        self._items_owned = 0      # ground-set items whose "home" is this host
        self.failed = False

    # ------------------------------------------------------------------ #
    # storage
    # ------------------------------------------------------------------ #
    def store(self, item: Any) -> Address:
        """Store ``item`` in a fresh slot and return its global address.

        Raises
        ------
        HostMemoryExceeded
            If the host already holds ``memory_limit`` items.
        """
        if self.memory_limit is not None and len(self._slots) >= self.memory_limit:
            raise HostMemoryExceeded(
                f"host {self.host_id} is full: memory_limit={self.memory_limit}"
            )
        slot = next(self._next_slot)
        self._slots[slot] = item
        return Address(host=self.host_id, slot=slot)

    def load(self, address: Address) -> Any:
        """Return the item stored at ``address``.

        Raises
        ------
        AddressError
            If the address belongs to another host or the slot is empty.
        """
        if address.host != self.host_id:
            raise AddressError(
                f"address {address} does not belong to host {self.host_id}"
            )
        try:
            return self._slots[address.slot]
        except KeyError as exc:
            raise AddressError(f"empty slot {address.slot} on host {self.host_id}") from exc

    def replace(self, address: Address, item: Any) -> None:
        """Overwrite the item stored at ``address`` (slot must exist)."""
        if address.host != self.host_id or address.slot not in self._slots:
            raise AddressError(f"cannot replace unknown address {address} on host {self.host_id}")
        self._slots[address.slot] = item

    def free(self, address: Address) -> Any:
        """Remove and return the item stored at ``address``."""
        if address.host != self.host_id:
            raise AddressError(
                f"address {address} does not belong to host {self.host_id}"
            )
        try:
            return self._slots.pop(address.slot)
        except KeyError as exc:
            raise AddressError(f"empty slot {address.slot} on host {self.host_id}") from exc

    def __contains__(self, address: Address) -> bool:
        return address.host == self.host_id and address.slot in self._slots

    def items(self) -> Iterator[tuple[Address, Any]]:
        """Iterate over ``(address, item)`` pairs stored on this host."""
        for slot, item in self._slots.items():
            yield Address(host=self.host_id, slot=slot), item

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #
    @property
    def memory_used(self) -> int:
        """Number of items currently stored (the measured ``M`` for this host)."""
        return len(self._slots)

    def note_out_reference(self, count: int = 1) -> None:
        """Record ``count`` pointers stored on this host that target other hosts."""
        self._out_references += count

    def note_in_reference(self, count: int = 1) -> None:
        """Record ``count`` pointers stored on other hosts that target this host."""
        self._in_references += count

    def note_owned_items(self, count: int = 1) -> None:
        """Record ``count`` ground-set items whose home host is this host.

        The ``n/H`` term of the congestion measure assumes queries start at
        the host owning the querying item; tracking owned items lets the
        congestion report weight that term per host.
        """
        self._items_owned += count

    @property
    def out_references(self) -> int:
        return self._out_references

    @property
    def in_references(self) -> int:
        return self._in_references

    @property
    def items_owned(self) -> int:
        return self._items_owned

    def reset_reference_counts(self) -> None:
        """Zero the reference counters (used when a structure is rebuilt)."""
        self._out_references = 0
        self._in_references = 0
        self._items_owned = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        limit = "inf" if self.memory_limit is None else self.memory_limit
        return f"Host(id={self.host_id}, used={self.memory_used}/{limit})"
