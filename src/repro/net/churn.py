"""Live churn: hosts joining, leaving gracefully, and crashing.

The paper assumes a frozen host set (§1.1); real peer-to-peer
deployments do not.  :class:`ChurnController` drives membership change on
a running :class:`~repro.net.network.Network`:

* **join** — a fresh host is registered and load is rebalanced onto it by
  migrating a share of records from the most loaded live host;
* **leave** — a host retires gracefully: its records are handed off to
  the remaining hosts first, then it is removed from the network;
* **crash** — a host fails without warning; the structure's self-repair
  re-homes the records it orphaned, after which the dead host is removed.

Data migration itself is structure-specific, so the controller delegates
it to a *repairer*: any object exposing ``migrate(host_id, targets=None,
fraction=...)`` and ``repair(host_ids)`` returning an object with
``summary`` (a ``MigrationSummary``), ``messages``, ``rounds`` and
``max_round_congestion`` attributes.  In practice that is a
:class:`repro.engine.repair.RepairEngine`; the controller takes it by
duck type so this module stays free of engine imports (the engine layer
builds on ``repro.net``, not the other way around).

Victim and schedule choices are drawn from a seeded ``random.Random``,
so a churn scenario is exactly reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Iterable

from repro.errors import ChurnError
from repro.net.naming import HostId
from repro.net.network import Network

#: Event kinds a churn schedule may contain.
EVENT_KINDS = ("join", "leave", "crash", "recover")


@dataclass(frozen=True)
class ChurnEvent:
    """One completed membership change, with its measured repair cost."""

    kind: str
    """``"join"``, ``"leave"``, ``"crash"`` or ``"recover"``."""

    host: HostId
    """The host that joined, left, crashed or recovered."""

    records_moved: int
    """Records handed off (join/leave) or reconstructed (crash)."""

    pointers_rewired: int
    """Records elsewhere whose stored pointers were repaired."""

    repair_messages: int
    """Messages the migration/repair traffic cost."""

    repair_rounds: int
    """Network rounds the migration/repair traffic spanned."""

    max_round_congestion: int
    """Worst per-host per-round load during the repair."""

    hosts_after: int
    """Live hosts once the event completed."""


def churn_schedule(
    events: int,
    rng: random.Random,
    join_weight: float = 2.0,
    leave_weight: float = 1.0,
    crash_weight: float = 1.0,
    recover_weight: float = 0.0,
) -> list[str]:
    """A seeded random sequence of churn event kinds.

    Joins are weighted higher by default so sustained schedules grow the
    network slightly instead of draining it below the controller's
    ``min_hosts`` floor.  ``recover`` events default to weight 0: a
    zero-weight trailing entry never changes ``rng.choices``'s draws (the
    cumulative-weight table gains one repeated tail value the bisection
    can never land on), so pre-existing seeded schedules stay
    byte-identical.
    """
    if events < 0:
        raise ValueError(f"events must be non-negative, got {events}")
    weights = (join_weight, leave_weight, crash_weight, recover_weight)
    if min(weights) < 0 or sum(weights) <= 0:
        raise ValueError(f"weights must be non-negative and not all zero: {weights}")
    return rng.choices(EVENT_KINDS, weights=weights, k=events)


class ChurnController:
    """Joins, retires and crashes hosts of a running network.

    Parameters
    ----------
    network:
        The network whose membership is being churned.
    repairer:
        Structure-aware migration/repair driver (see module docstring).
    rng:
        Seeded randomness for victim selection and schedules.
    join_fraction:
        Share of the donor host's records migrated onto a newly joined
        host.
    min_hosts:
        Leaves and crashes are refused once the live host count would
        drop below this floor.
    """

    def __init__(
        self,
        network: Network,
        repairer: Any,
        rng: random.Random | None = None,
        join_fraction: float = 0.5,
        min_hosts: int = 2,
    ) -> None:
        if not 0.0 < join_fraction <= 1.0:
            raise ValueError(f"join_fraction must be in (0, 1], got {join_fraction}")
        if min_hosts < 1:
            raise ValueError(f"min_hosts must be at least 1, got {min_hosts}")
        self.network = network
        self.repairer = repairer
        self.rng = rng or random.Random(0)
        self.join_fraction = join_fraction
        self.min_hosts = min_hosts
        self.events: list[ChurnEvent] = []

    # ------------------------------------------------------------------ #
    # event primitives
    # ------------------------------------------------------------------ #
    def join(self) -> ChurnEvent:
        """Register a fresh host and rebalance load onto it."""
        donor = self._donor_host()
        newcomer = self.network.add_host()
        result = self.repairer.migrate(
            donor, targets=[newcomer.host_id], fraction=self.join_fraction
        )
        return self._record("join", newcomer.host_id, result)

    def leave(self, host_id: HostId | None = None) -> ChurnEvent:
        """Gracefully retire a host: hand its records off, then remove it."""
        victim = self._victim_host(host_id, "leave")
        result = self.repairer.migrate(victim, targets=None, fraction=1.0)
        # No force: a graceful leave must have handed every record off.
        self.network.remove_host(victim)
        return self._record("leave", victim, result)

    def crash(self, host_id: HostId | None = None) -> ChurnEvent:
        """Fail a host without warning, then self-repair and remove it."""
        victim = self._victim_host(host_id, "crash")
        self.network.fail_host(victim)
        result = self.repairer.repair([victim])
        self.network.remove_host(victim, force=True)
        return self._record("crash", victim, result)

    def recover(self, host_id: HostId | None = None) -> ChurnEvent:
        """Bring a failed host back online with its records intact.

        The inverse of a crash *fault* (a crash-stopped host whose state
        survived), not of a crash *event* (which repairs the records away
        and removes the host).  No data moves and no repair traffic is
        charged; the membership epoch bump is what downstream layers
        (route caches, repair engines) react to.
        """
        failed = sorted(self.network.failed_hosts)
        if host_id is not None:
            if host_id not in failed:
                raise ChurnError(f"cannot recover host {host_id}: not a failed host")
            victim = host_id
        else:
            if not failed:
                raise ChurnError("cannot recover: the network has no failed hosts")
            victim = self.rng.choice(failed)
        self.network.recover_host(victim)
        event = ChurnEvent(
            kind="recover",
            host=victim,
            records_moved=0,
            pointers_rewired=0,
            repair_messages=0,
            repair_rounds=0,
            max_round_congestion=0,
            hosts_after=len(self._live_hosts()),
        )
        self.events.append(event)
        return event

    def run_schedule(self, kinds: Iterable[str]) -> list[ChurnEvent]:
        """Apply a sequence of ``"join"`` / ``"leave"`` / ``"crash"`` /
        ``"recover"`` events."""
        applied: list[ChurnEvent] = []
        for kind in kinds:
            if kind == "join":
                applied.append(self.join())
            elif kind == "leave":
                applied.append(self.leave())
            elif kind == "crash":
                applied.append(self.crash())
            elif kind == "recover":
                applied.append(self.recover())
            else:
                raise ValueError(f"unknown churn event kind {kind!r}")
        return applied

    # ------------------------------------------------------------------ #
    # selection and bookkeeping
    # ------------------------------------------------------------------ #
    def _live_hosts(self) -> list[HostId]:
        return self.network.alive_host_ids()

    def _donor_host(self) -> HostId:
        """The most loaded live host (ties break on the lower id)."""
        live = self._live_hosts()
        if not live:
            raise ChurnError("cannot join: the network has no live hosts")
        return max(live, key=lambda host_id: (self.network.host(host_id).memory_used, -host_id))

    def _victim_host(self, host_id: HostId | None, kind: str) -> HostId:
        live = self._live_hosts()
        if len(live) <= self.min_hosts:
            raise ChurnError(
                f"cannot {kind}: only {len(live)} live host(s) left "
                f"(min_hosts={self.min_hosts})"
            )
        if host_id is not None:
            if host_id not in live:
                raise ChurnError(f"cannot {kind} host {host_id}: not a live host")
            return host_id
        return self.rng.choice(live)

    def _record(self, kind: str, host: HostId, result: Any) -> ChurnEvent:
        event = ChurnEvent(
            kind=kind,
            host=host,
            records_moved=result.summary.records_moved,
            pointers_rewired=result.summary.pointers_rewired,
            repair_messages=result.messages,
            repair_rounds=result.rounds,
            max_round_congestion=result.max_round_congestion,
            hosts_after=len(self._live_hosts()),
        )
        self.events.append(event)
        return event
