"""Deterministic, seeded fault injection: chaos plans for the simulator.

The paper assumes hosts never fail and messages always arrive (§1.1).
The churn subsystem already relaxes the first assumption (crash-stop
with self-repair); this module relaxes the second, and does it the same
way everything else in this repository works: **seeded and replayable**.

A :class:`FaultPlan` is an ordered list of scoped :class:`FaultRule`\\ s
plus one ``random.Random(seed)``.  The network consults the plan at a
single choke point per delivery (``Network.run_round`` for the round
engine, ``Network.send`` for immediate mode), and the plan consults its
rng *only* for rules whose scope matches — so the decision stream is a
pure function of ``(seed, rules, delivery sequence)``.  Deliveries are
processed in queue order, queue order is a pure function of the seeded
workload, and therefore two identical runs make byte-identical fault
decisions.  The plan's rng is pickled with the network, so a recovered
snapshot resumes the *same* decision stream.

Two rule families:

* **Message rules** (``drop`` / ``duplicate`` / ``delay``) fire
  per-delivery with ``probability``, scoped by link (``src``/``dst``),
  by :class:`~repro.net.message.MessageKind` value, by topology cluster
  (either endpoint, via :meth:`~repro.net.topology.Topology.cluster_of`)
  and/or by a burst ``window`` of session-relative round indices.
  A drop resolves the delivery ticket with
  :class:`~repro.errors.FaultInjectedError` (uncharged — the message
  never arrived); a duplicate charges the delivery twice; a delay parks
  the ticket for ``delay_rounds`` rounds.
* **Host rules** (``crash`` / ``outage``) fire once per plan instance at
  ``at_round``: ``crash`` fails an explicit ``host`` or ``victims``
  rng-sampled alive hosts, ``outage`` fails every alive host of one
  topology ``cluster`` (a *correlated* failure).  ``recover_after``
  schedules the inverse ``recover_host`` calls that many rounds later.

``resolve_faults`` accepts ``None`` (the default — the network keeps its
zero-overhead fast path and stays byte-identical to a build without this
module), a preset name from :data:`FAULT_NAMES`, a single rule, a rule
sequence, or a plan instance.  ``faults_from_config`` rebuilds a plan
from the portable ``describe()`` dict the durability layer journals.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Sequence

from repro.net.naming import HostId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (network -> faults)
    from repro.net.message import MessageKind
    from repro.net.network import Network

#: Per-delivery fault verbs.
MESSAGE_FAULTS = ("drop", "duplicate", "delay")
#: Membership fault verbs.
HOST_FAULTS = ("crash", "outage")


@dataclass(frozen=True)
class FaultRule:
    """One scoped fault: what goes wrong, to whom, when, how often.

    ``kind`` selects the verb (see :data:`MESSAGE_FAULTS` /
    :data:`HOST_FAULTS`); the remaining fields scope it.  Unset scopes
    match everything.  ``window`` bounds a message rule to session-
    relative rounds ``start <= round < stop`` (a burst); ``at_round`` is
    the session-relative trigger round of a host rule.
    """

    kind: str
    probability: float = 1.0
    src: HostId | None = None
    dst: HostId | None = None
    message_kind: str | None = None
    cluster: int | None = None
    window: tuple[int, int] | None = None
    delay_rounds: int = 1
    at_round: int = 0
    host: HostId | None = None
    victims: int = 1
    recover_after: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in MESSAGE_FAULTS + HOST_FAULTS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{MESSAGE_FAULTS + HOST_FAULTS}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        if self.window is not None:
            window = tuple(int(bound) for bound in self.window)
            if len(window) != 2 or window[0] < 0 or window[0] >= window[1]:
                raise ValueError(
                    f"window must be (start, stop) with 0 <= start < stop, got {self.window}"
                )
            object.__setattr__(self, "window", window)
        if self.delay_rounds < 1:
            raise ValueError(f"delay_rounds must be >= 1, got {self.delay_rounds}")
        if self.at_round < 0:
            raise ValueError(f"at_round must be >= 0, got {self.at_round}")
        if self.victims < 1:
            raise ValueError(f"victims must be >= 1, got {self.victims}")
        if self.recover_after is not None and self.recover_after < 1:
            raise ValueError(f"recover_after must be >= 1, got {self.recover_after}")

    def describe(self) -> dict[str, Any]:
        """Portable JSON-able record (non-default fields only)."""
        record: dict[str, Any] = {"kind": self.kind}
        for spec in fields(self):
            if spec.name == "kind":
                continue
            value = getattr(self, spec.name)
            if value == spec.default:
                continue
            record[spec.name] = list(value) if spec.name == "window" else value
        return record


def rule_from_config(config: Mapping[str, Any]) -> FaultRule:
    """Rebuild one rule from its :meth:`FaultRule.describe` dict."""
    record = dict(config)
    kind = record.pop("kind", None)
    if kind is None:
        raise ValueError(f"fault rule config is missing 'kind': {config!r}")
    window = record.get("window")
    if window is not None:
        record["window"] = tuple(window)
    return FaultRule(kind=kind, **record)


# -- rule factories ------------------------------------------------------- #
def drop(
    probability: float = 1.0,
    *,
    src: HostId | None = None,
    dst: HostId | None = None,
    message_kind: str | None = None,
    cluster: int | None = None,
    window: tuple[int, int] | None = None,
) -> FaultRule:
    """A message-loss rule: matching deliveries never arrive."""
    return FaultRule(
        "drop",
        probability=probability,
        src=src,
        dst=dst,
        message_kind=message_kind,
        cluster=cluster,
        window=window,
    )


def duplicate(
    probability: float = 1.0,
    *,
    src: HostId | None = None,
    dst: HostId | None = None,
    message_kind: str | None = None,
    cluster: int | None = None,
    window: tuple[int, int] | None = None,
) -> FaultRule:
    """A duplication rule: matching deliveries are charged twice."""
    return FaultRule(
        "duplicate",
        probability=probability,
        src=src,
        dst=dst,
        message_kind=message_kind,
        cluster=cluster,
        window=window,
    )


def delay(
    delay_rounds: int = 1,
    probability: float = 1.0,
    *,
    src: HostId | None = None,
    dst: HostId | None = None,
    message_kind: str | None = None,
    cluster: int | None = None,
    window: tuple[int, int] | None = None,
) -> FaultRule:
    """A delay rule: matching deliveries arrive ``delay_rounds`` rounds late."""
    return FaultRule(
        "delay",
        probability=probability,
        src=src,
        dst=dst,
        message_kind=message_kind,
        cluster=cluster,
        window=window,
        delay_rounds=delay_rounds,
    )


def crash(
    host: HostId | None = None,
    *,
    at_round: int = 0,
    victims: int = 1,
    recover_after: int | None = None,
) -> FaultRule:
    """A crash-stop rule: fail one explicit host or ``victims`` sampled ones."""
    return FaultRule(
        "crash", host=host, at_round=at_round, victims=victims, recover_after=recover_after
    )


def outage(
    cluster: int = 0, *, at_round: int = 0, recover_after: int | None = None
) -> FaultRule:
    """A correlated outage: fail every alive host of one topology cluster."""
    return FaultRule(
        "outage", cluster=cluster, at_round=at_round, recover_after=recover_after
    )


def inject_host_faults(network: "Network", host_ids: Iterable[HostId]) -> list[HostId]:
    """Fail the listed hosts, skipping unknown or already-failed ids.

    The single host-fault choke point: both :meth:`FaultPlan.begin_round`
    and the legacy :class:`repro.net.failure.FailureInjector` route
    through it, so "never re-fail a failed host" holds everywhere.
    Returns the ids actually failed, in input order.
    """
    failed: list[HostId] = []
    already_failed = network.failed_hosts
    for host_id in host_ids:
        if host_id in already_failed or host_id not in network:
            continue
        network.fail_host(host_id)
        failed.append(host_id)
    return failed


class FaultPlan:
    """An ordered, seeded set of fault rules — the unit of chaos.

    Rules are consulted in order; the first matching message rule whose
    probability draw fires decides the delivery.  All randomness comes
    from one ``random.Random(seed)``, consumed only for scope-matching
    rules with ``0 < probability < 1`` and for sampled crash victims, so
    the decision stream is deterministic given the workload.  The plan
    pickles with its network (rng state included): a recovered snapshot
    resumes the exact decision stream.
    """

    def __init__(self, rules: "FaultRule | Iterable[FaultRule]" = (), seed: int = 0) -> None:
        if isinstance(rules, FaultRule):
            rules = (rules,)
        self.rules: tuple[FaultRule, ...] = tuple(rules)
        for rule in self.rules:
            if not isinstance(rule, FaultRule):
                raise ValueError(f"expected FaultRule instances, got {rule!r}")
        self.seed = int(seed)
        self._rng = random.Random(self.seed)
        self._message_rules = tuple(
            rule for rule in self.rules if rule.kind in MESSAGE_FAULTS
        )
        self._host_rules = tuple(
            (index, rule)
            for index, rule in enumerate(self.rules)
            if rule.kind in HOST_FAULTS
        )
        #: Host rules fire once per plan instance; indices already fired.
        self._fired: set[int] = set()
        #: Monotone count of begin_round calls (spans round sessions), so
        #: a scheduled recovery survives a session boundary.
        self._clock = 0
        self._recoveries: list[tuple[int, HostId]] = []

    # -- delivery-time decisions ----------------------------------------- #
    def decide(
        self,
        network: "Network",
        round_index: int | None,
        src: HostId,
        dst: HostId,
        kind: "MessageKind",
    ) -> tuple[Any, ...] | None:
        """Decide one delivery: ``None`` (deliver normally), ``("drop",)``,
        ``("duplicate",)`` or ``("delay", rounds)``.

        ``round_index`` is the session-relative round (``None`` in
        immediate mode, where burst windows never match).
        """
        for rule in self._message_rules:
            if rule.window is not None:
                if round_index is None:
                    continue
                start, stop = rule.window
                if not start <= round_index < stop:
                    continue
            if rule.src is not None and rule.src != src:
                continue
            if rule.dst is not None and rule.dst != dst:
                continue
            if rule.message_kind is not None and rule.message_kind != kind.value:
                continue
            if rule.cluster is not None:
                topology = network.topology
                if topology is None:
                    continue
                if (
                    topology.cluster_of(src) != rule.cluster
                    and topology.cluster_of(dst) != rule.cluster
                ):
                    continue
            probability = rule.probability
            if probability <= 0.0:
                continue
            if probability < 1.0 and self._rng.random() >= probability:
                continue
            if rule.kind == "delay":
                return ("delay", rule.delay_rounds)
            return (rule.kind,)
        return None

    # -- round-start membership faults ----------------------------------- #
    def begin_round(self, network: "Network", round_index: int) -> None:
        """Apply due recoveries, then any host rules triggering this round."""
        clock = self._clock
        self._clock = clock + 1
        if self._recoveries:
            due = [host for when, host in self._recoveries if when <= clock]
            if due:
                self._recoveries = [
                    (when, host) for when, host in self._recoveries if when > clock
                ]
                for host in due:
                    if host in network and host in network.failed_hosts:
                        network.recover_host(host)
        for index, rule in self._host_rules:
            if index in self._fired or round_index < rule.at_round:
                continue
            self._fired.add(index)
            failed = inject_host_faults(network, self._pick_victims(network, rule))
            if rule.recover_after is not None:
                for host in failed:
                    self._recoveries.append((clock + rule.recover_after, host))

    def _pick_victims(self, network: "Network", rule: FaultRule) -> list[HostId]:
        alive = sorted(network.alive_host_ids())
        if rule.kind == "outage":
            topology = network.topology
            if topology is None:
                raise ValueError(
                    "an 'outage' rule needs a topology on the network to "
                    "define its cluster; install one via Cluster(topology=...)"
                )
            cluster = rule.cluster if rule.cluster is not None else 0
            victims = [host for host in alive if topology.cluster_of(host) == cluster]
            # Never take the whole network down: leave one host standing so
            # the surviving operations have somewhere to run.
            if len(victims) == len(alive) and victims:
                victims = victims[:-1]
            return victims
        if rule.host is not None:
            return [rule.host]
        count = min(rule.victims, max(0, len(alive) - 1))
        if count <= 0:
            return []
        return self._rng.sample(alive, count)

    # -- portability ------------------------------------------------------ #
    def describe(self) -> dict[str, Any]:
        """Portable JSON-able construction record (rules + seed).

        Like :meth:`repro.net.topology.Topology.describe`, this captures
        the plan's *construction*, not its consumed rng state — the
        durability layer journals it in the create record and refuses
        recovery on a mismatch; live rng state travels in snapshots via
        pickling.
        """
        return {
            "kind": "plan",
            "seed": self.seed,
            "rules": [rule.describe() for rule in self.rules],
        }

    def __eq__(self, other: Any) -> bool:
        return isinstance(other, FaultPlan) and self.describe() == other.describe()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultPlan(rules={self.rules!r}, seed={self.seed})"


#: Preset plan names accepted by :func:`resolve_faults` (and the CLI).
FAULT_NAMES = ("lossy", "flaky", "blackout")


def resolve_faults(
    spec: "str | FaultRule | Sequence[FaultRule] | FaultPlan | None",
    seed: int = 0,
) -> FaultPlan | None:
    """Resolve a faults argument: ``None``, a preset name, rule(s), or a plan.

    ``None`` stays ``None`` — the network's zero-overhead default, with
    delivery fast paths intact.  A preset name builds that named plan
    seeded from ``seed``; a rule or rule sequence is wrapped in a plan;
    a plan instance passes through.
    """
    if spec is None or isinstance(spec, FaultPlan):
        return spec
    if isinstance(spec, FaultRule):
        return FaultPlan((spec,), seed=seed)
    if isinstance(spec, str):
        if spec == "lossy":
            return FaultPlan((drop(0.05, message_kind="query"),), seed=seed)
        if spec == "flaky":
            return FaultPlan(
                (
                    drop(0.02, message_kind="query"),
                    duplicate(0.02),
                    delay(2, 0.02),
                ),
                seed=seed,
            )
        if spec == "blackout":
            return FaultPlan((crash(at_round=1, recover_after=4),), seed=seed)
        raise ValueError(
            f"unknown fault preset {spec!r}; expected one of {FAULT_NAMES}, "
            "a FaultRule, a sequence of rules, or a FaultPlan instance"
        )
    try:
        rules = tuple(spec)
    except TypeError:
        raise ValueError(f"cannot resolve faults from {spec!r}") from None
    return FaultPlan(rules, seed=seed)


def faults_from_config(config: "Mapping[str, Any] | None") -> FaultPlan | None:
    """Rebuild a fault plan from a journaled ``describe()`` dict.

    The inverse of :meth:`FaultPlan.describe` (``None`` means no plan).
    """
    if config is None:
        return None
    if config.get("kind") != "plan":
        raise ValueError(f"unknown fault config kind {config.get('kind')!r}")
    rules = tuple(rule_from_config(rule) for rule in config.get("rules", ()))
    return FaultPlan(rules, seed=config.get("seed", 0))
