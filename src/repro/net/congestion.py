"""Congestion accounting.

Section 1.1 of the paper defines the congestion of a host as

    "the sum of the number of references to items stored at the host, the
    number of references to items stored at other hosts, and the number
    n/H (which measures the expected number of queries likely to begin at
    any host, based on the number of items in the set S)."

:func:`congestion_report` computes exactly that quantity per host from
the reference counters maintained by :class:`repro.net.host.Host`, plus
summary statistics (max, mean) that the Table 1 benchmark reports.

That static measure is a *proxy*: it counts pointers that could carry
traffic.  When the network runs in round-based mode (see
:meth:`repro.net.network.Network.rounds` and :mod:`repro.engine`), the
congestion each host actually absorbs is measured directly —
:func:`round_congestion_report` summarises the per-host per-round
delivery counts of a batch, the quantity Theorem 2 bounds by
O(log n / log log n) per host per round w.h.p.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean

from repro.net.naming import HostId


@dataclass(frozen=True, slots=True)
class CongestionReport:
    """Per-host and aggregate congestion of a distributed structure."""

    per_host: dict[HostId, float]
    ground_set_size: int
    host_count: int

    @property
    def max_congestion(self) -> float:
        """The worst per-host congestion — the quantity ``C(n)`` bounds."""
        if not self.per_host:
            return 0.0
        return max(self.per_host.values())

    @property
    def mean_congestion(self) -> float:
        """Average per-host congestion (load-balance indicator)."""
        if not self.per_host:
            return 0.0
        return mean(self.per_host.values())

    @property
    def imbalance(self) -> float:
        """Ratio of max to mean congestion (1.0 means perfectly balanced)."""
        avg = self.mean_congestion
        if avg == 0:
            return 1.0
        return self.max_congestion / avg

    def as_dict(self) -> dict[str, float]:
        """Summary suitable for benchmark tables."""
        return {
            "hosts": float(self.host_count),
            "items": float(self.ground_set_size),
            "max_congestion": self.max_congestion,
            "mean_congestion": self.mean_congestion,
            "imbalance": self.imbalance,
        }


def congestion_report(network, ground_set_size: int) -> CongestionReport:
    """Compute the §1.1 congestion measure for every host of ``network``.

    A single pass over the alive hosts: the reference counters live on
    the hosts themselves, so no intermediate per-host dictionaries are
    rebuilt along the way.

    Parameters
    ----------
    network:
        A :class:`repro.net.network.Network` whose hosts carry reference
        counters populated by the structure under measurement.
    ground_set_size:
        ``n``, the number of items stored in the structure.  The ``n/H``
        term uses the network's *alive* host count for ``H``: queries can
        only begin at (and load can only be absorbed by) hosts that are
        actually up, so after churn a failed host neither dilutes the
        per-host base load nor contributes a per-host row of its own.
    """
    alive = network.alive_host_ids()
    host_count = len(alive)
    if host_count == 0:
        return CongestionReport(per_host={}, ground_set_size=ground_set_size, host_count=0)
    base_load = ground_set_size / host_count
    per_host: dict[HostId, float] = {}
    for host_id in alive:
        host = network.host(host_id)
        per_host[host_id] = host.in_references + host.out_references + base_load
    return CongestionReport(
        per_host=per_host,
        ground_set_size=ground_set_size,
        host_count=host_count,
    )


@dataclass(frozen=True, slots=True)
class RoundCongestionReport:
    """Directly-measured congestion of a round-based batch execution.

    ``per_round_max`` holds, for every round, the largest number of
    messages any single host received in that round; ``busiest_host`` /
    ``busiest_round`` identify where the overall maximum occurred.

    On a network with an explicit :class:`~repro.net.topology.Topology`
    the weighted dimension is populated as well: ``total_weight`` (sum of
    link costs of every delivery), the per-round maximum *link* and
    *cluster* loads, and the busiest link / cluster overall.  Without a
    topology these keep their empty defaults and ``as_dict()`` omits
    them, so flat summaries are byte-identical to the pre-topology ones.
    """

    rounds: int
    total_messages: int
    per_round_max: tuple[int, ...]
    busiest_host: HostId | None
    busiest_round: int | None
    total_weight: int = 0
    per_round_max_link: tuple[int, ...] = ()
    per_round_max_cluster: tuple[int, ...] = ()
    busiest_link: tuple[HostId, HostId] | None = None
    busiest_cluster: int | None = None
    topology_aware: bool = False

    @property
    def max_host_round_load(self) -> int:
        """Worst per-host per-round load — what Theorem 2 bounds w.h.p."""
        return max(self.per_round_max, default=0)

    @property
    def mean_round_max(self) -> float:
        """Average (over rounds) of the per-round maximum host load."""
        if not self.per_round_max:
            return 0.0
        return mean(self.per_round_max)

    @property
    def max_link_round_load(self) -> int:
        """Worst weighted per-link per-round load (0 without a topology)."""
        return max(self.per_round_max_link, default=0)

    @property
    def max_cluster_round_load(self) -> int:
        """Worst weighted per-cluster per-round load (0 without a topology)."""
        return max(self.per_round_max_cluster, default=0)

    def as_dict(self) -> dict[str, float]:
        """Summary suitable for benchmark tables."""
        summary = {
            "rounds": float(self.rounds),
            "messages": float(self.total_messages),
            "max_host_round_load": float(self.max_host_round_load),
            "mean_round_max": self.mean_round_max,
        }
        if self.topology_aware:
            summary["weight"] = float(self.total_weight)
            summary["max_link_round_load"] = float(self.max_link_round_load)
            summary["max_cluster_round_load"] = float(self.max_cluster_round_load)
        return summary


def summarize_round_reports(reports) -> RoundCongestionReport:
    """Fold a sequence of :class:`~repro.net.network.RoundReport` into one summary.

    A single pass over the reports: every report already carries its own
    per-round maximum (``max_load`` / ``max_load_host``, computed when the
    round closed), so no per-host dictionaries are re-scanned here — and
    ledger-mode reports, whose ``per_host`` dicts were dropped, summarise
    identically to traced ones.
    """
    per_round_max: list[int] = []
    busiest_host: HostId | None = None
    busiest_round: int | None = None
    best = 0
    total = 0
    count = 0
    aware = False
    total_weight = 0
    per_round_max_link: list[int] = []
    per_round_max_cluster: list[int] = []
    busiest_link: tuple[HostId, HostId] | None = None
    busiest_cluster: int | None = None
    best_link = 0
    best_cluster = 0
    for report in reports:
        count += 1
        load = report.max_host_load
        per_round_max.append(load)
        total += report.delivered
        if load > best:
            best = load
            busiest_host = (
                report.max_load_host
                if report.max_load >= 0
                else max(report.per_host, key=report.per_host.__getitem__, default=None)
            )
            busiest_round = report.index
        # Rounds recorded under an explicit topology carry the weighted
        # per-link / per-cluster maxima; flat-default rounds keep the
        # zero defaults and leave the weighted summary empty.
        if report.weight or report.max_link is not None:
            aware = True
        total_weight += report.weight
        per_round_max_link.append(report.max_link_load)
        per_round_max_cluster.append(report.max_cluster_load)
        if report.max_link_load > best_link:
            best_link = report.max_link_load
            busiest_link = report.max_link
        if report.max_cluster_load > best_cluster:
            best_cluster = report.max_cluster_load
            busiest_cluster = report.max_cluster
    return RoundCongestionReport(
        rounds=count,
        total_messages=total,
        per_round_max=tuple(per_round_max),
        busiest_host=busiest_host,
        busiest_round=busiest_round,
        total_weight=total_weight if aware else 0,
        per_round_max_link=tuple(per_round_max_link) if aware else (),
        per_round_max_cluster=tuple(per_round_max_cluster) if aware else (),
        busiest_link=busiest_link,
        busiest_cluster=busiest_cluster,
        topology_aware=aware,
    )


def round_congestion_report(network) -> RoundCongestionReport:
    """Summarise the per-host per-round deliveries of the last round session.

    Reads the running aggregates the network maintains as each round
    closes (see :meth:`repro.net.network.Network.round_congestion_summary`),
    so the summary is O(rounds) even when ``round_report_retention``
    truncated the stored report list.  Empty when the network has only
    ever run in immediate mode.
    """
    rounds, delivered, per_round_max, busiest_host, busiest_round = (
        network.round_congestion_summary()
    )
    weighted = network.topology_congestion_summary()
    if weighted is None:
        return RoundCongestionReport(
            rounds=rounds,
            total_messages=delivered,
            per_round_max=per_round_max,
            busiest_host=busiest_host,
            busiest_round=busiest_round,
        )
    return RoundCongestionReport(
        rounds=rounds,
        total_messages=delivered,
        per_round_max=per_round_max,
        busiest_host=busiest_host,
        busiest_round=busiest_round,
        total_weight=weighted["weight"],
        per_round_max_link=weighted["per_round_max_link"],
        per_round_max_cluster=weighted["per_round_max_cluster"],
        busiest_link=weighted["busiest_link"],
        busiest_cluster=weighted["busiest_cluster"],
        topology_aware=True,
    )
