"""Congestion accounting.

Section 1.1 of the paper defines the congestion of a host as

    "the sum of the number of references to items stored at the host, the
    number of references to items stored at other hosts, and the number
    n/H (which measures the expected number of queries likely to begin at
    any host, based on the number of items in the set S)."

:func:`congestion_report` computes exactly that quantity per host from
the reference counters maintained by :class:`repro.net.host.Host`, plus
summary statistics (max, mean) that the Table 1 benchmark reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean

from repro.net.naming import HostId


@dataclass(frozen=True, slots=True)
class CongestionReport:
    """Per-host and aggregate congestion of a distributed structure."""

    per_host: dict[HostId, float]
    ground_set_size: int
    host_count: int

    @property
    def max_congestion(self) -> float:
        """The worst per-host congestion — the quantity ``C(n)`` bounds."""
        if not self.per_host:
            return 0.0
        return max(self.per_host.values())

    @property
    def mean_congestion(self) -> float:
        """Average per-host congestion (load-balance indicator)."""
        if not self.per_host:
            return 0.0
        return mean(self.per_host.values())

    @property
    def imbalance(self) -> float:
        """Ratio of max to mean congestion (1.0 means perfectly balanced)."""
        avg = self.mean_congestion
        if avg == 0:
            return 1.0
        return self.max_congestion / avg

    def as_dict(self) -> dict[str, float]:
        """Summary suitable for benchmark tables."""
        return {
            "hosts": float(self.host_count),
            "items": float(self.ground_set_size),
            "max_congestion": self.max_congestion,
            "mean_congestion": self.mean_congestion,
            "imbalance": self.imbalance,
        }


def congestion_report(network, ground_set_size: int) -> CongestionReport:
    """Compute the §1.1 congestion measure for every host of ``network``.

    Parameters
    ----------
    network:
        A :class:`repro.net.network.Network` whose hosts carry reference
        counters populated by the structure under measurement.
    ground_set_size:
        ``n``, the number of items stored in the structure.  The ``n/H``
        term uses the network's host count for ``H``.
    """
    hosts = list(network.hosts())
    host_count = len(hosts)
    if host_count == 0:
        return CongestionReport(per_host={}, ground_set_size=ground_set_size, host_count=0)
    base_load = ground_set_size / host_count
    per_host: dict[HostId, float] = {}
    for host in hosts:
        per_host[host.host_id] = host.in_references + host.out_references + base_load
    return CongestionReport(
        per_host=per_host,
        ground_set_size=ground_set_size,
        host_count=host_count,
    )
