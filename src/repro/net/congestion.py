"""Congestion accounting.

Section 1.1 of the paper defines the congestion of a host as

    "the sum of the number of references to items stored at the host, the
    number of references to items stored at other hosts, and the number
    n/H (which measures the expected number of queries likely to begin at
    any host, based on the number of items in the set S)."

:func:`congestion_report` computes exactly that quantity per host from
the reference counters maintained by :class:`repro.net.host.Host`, plus
summary statistics (max, mean) that the Table 1 benchmark reports.

That static measure is a *proxy*: it counts pointers that could carry
traffic.  When the network runs in round-based mode (see
:meth:`repro.net.network.Network.rounds` and :mod:`repro.engine`), the
congestion each host actually absorbs is measured directly —
:func:`round_congestion_report` summarises the per-host per-round
delivery counts of a batch, the quantity Theorem 2 bounds by
O(log n / log log n) per host per round w.h.p.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean

from repro.net.naming import HostId


@dataclass(frozen=True, slots=True)
class CongestionReport:
    """Per-host and aggregate congestion of a distributed structure."""

    per_host: dict[HostId, float]
    ground_set_size: int
    host_count: int

    @property
    def max_congestion(self) -> float:
        """The worst per-host congestion — the quantity ``C(n)`` bounds."""
        if not self.per_host:
            return 0.0
        return max(self.per_host.values())

    @property
    def mean_congestion(self) -> float:
        """Average per-host congestion (load-balance indicator)."""
        if not self.per_host:
            return 0.0
        return mean(self.per_host.values())

    @property
    def imbalance(self) -> float:
        """Ratio of max to mean congestion (1.0 means perfectly balanced)."""
        avg = self.mean_congestion
        if avg == 0:
            return 1.0
        return self.max_congestion / avg

    def as_dict(self) -> dict[str, float]:
        """Summary suitable for benchmark tables."""
        return {
            "hosts": float(self.host_count),
            "items": float(self.ground_set_size),
            "max_congestion": self.max_congestion,
            "mean_congestion": self.mean_congestion,
            "imbalance": self.imbalance,
        }


def congestion_report(network, ground_set_size: int) -> CongestionReport:
    """Compute the §1.1 congestion measure for every host of ``network``.

    A single pass over the alive hosts: the reference counters live on
    the hosts themselves, so no intermediate per-host dictionaries are
    rebuilt along the way.

    Parameters
    ----------
    network:
        A :class:`repro.net.network.Network` whose hosts carry reference
        counters populated by the structure under measurement.
    ground_set_size:
        ``n``, the number of items stored in the structure.  The ``n/H``
        term uses the network's *alive* host count for ``H``: queries can
        only begin at (and load can only be absorbed by) hosts that are
        actually up, so after churn a failed host neither dilutes the
        per-host base load nor contributes a per-host row of its own.
    """
    alive = network.alive_host_ids()
    host_count = len(alive)
    if host_count == 0:
        return CongestionReport(per_host={}, ground_set_size=ground_set_size, host_count=0)
    base_load = ground_set_size / host_count
    per_host: dict[HostId, float] = {}
    for host_id in alive:
        host = network.host(host_id)
        per_host[host_id] = host.in_references + host.out_references + base_load
    return CongestionReport(
        per_host=per_host,
        ground_set_size=ground_set_size,
        host_count=host_count,
    )


@dataclass(frozen=True, slots=True)
class RoundCongestionReport:
    """Directly-measured congestion of a round-based batch execution.

    ``per_round_max`` holds, for every round, the largest number of
    messages any single host received in that round; ``busiest_host`` /
    ``busiest_round`` identify where the overall maximum occurred.
    """

    rounds: int
    total_messages: int
    per_round_max: tuple[int, ...]
    busiest_host: HostId | None
    busiest_round: int | None

    @property
    def max_host_round_load(self) -> int:
        """Worst per-host per-round load — what Theorem 2 bounds w.h.p."""
        return max(self.per_round_max, default=0)

    @property
    def mean_round_max(self) -> float:
        """Average (over rounds) of the per-round maximum host load."""
        if not self.per_round_max:
            return 0.0
        return mean(self.per_round_max)

    def as_dict(self) -> dict[str, float]:
        """Summary suitable for benchmark tables."""
        return {
            "rounds": float(self.rounds),
            "messages": float(self.total_messages),
            "max_host_round_load": float(self.max_host_round_load),
            "mean_round_max": self.mean_round_max,
        }


def summarize_round_reports(reports) -> RoundCongestionReport:
    """Fold a sequence of :class:`~repro.net.network.RoundReport` into one summary.

    A single pass over the reports: every report already carries its own
    per-round maximum (``max_load`` / ``max_load_host``, computed when the
    round closed), so no per-host dictionaries are re-scanned here — and
    ledger-mode reports, whose ``per_host`` dicts were dropped, summarise
    identically to traced ones.
    """
    per_round_max: list[int] = []
    busiest_host: HostId | None = None
    busiest_round: int | None = None
    best = 0
    total = 0
    count = 0
    for report in reports:
        count += 1
        load = report.max_host_load
        per_round_max.append(load)
        total += report.delivered
        if load > best:
            best = load
            busiest_host = (
                report.max_load_host
                if report.max_load >= 0
                else max(report.per_host, key=report.per_host.__getitem__, default=None)
            )
            busiest_round = report.index
    return RoundCongestionReport(
        rounds=count,
        total_messages=total,
        per_round_max=tuple(per_round_max),
        busiest_host=busiest_host,
        busiest_round=busiest_round,
    )


def round_congestion_report(network) -> RoundCongestionReport:
    """Summarise the per-host per-round deliveries of the last round session.

    Reads the running aggregates the network maintains as each round
    closes (see :meth:`repro.net.network.Network.round_congestion_summary`),
    so the summary is O(rounds) even when ``round_report_retention``
    truncated the stored report list.  Empty when the network has only
    ever run in immediate mode.
    """
    rounds, delivered, per_round_max, busiest_host, busiest_round = (
        network.round_congestion_summary()
    )
    return RoundCongestionReport(
        rounds=rounds,
        total_messages=delivered,
        per_round_max=per_round_max,
        busiest_host=busiest_host,
        busiest_round=busiest_round,
    )
