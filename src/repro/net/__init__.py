"""Peer-to-peer network simulator substrate.

The paper assumes ``n`` hosts that can each send a message to any other
host, with per-host memory bounded by ``M`` and no host failures (§1.1).
This subpackage provides exactly that model as a deterministic,
single-process simulator:

* :class:`~repro.net.host.Host` — a host with a slot-addressed local store
  and a memory budget.
* :class:`~repro.net.naming.Address` — a ``(host, slot)`` pair, the unit of
  "hyperlink pointer" used throughout the paper (§2.3: "a pointer consists
  of a pair (h, a)").
* :class:`~repro.net.network.Network` — the host registry and the message
  accounting boundary.  Every remote pointer dereference costs one message;
  local dereferences are free, matching the paper's cost model.
* :class:`~repro.net.rpc.Traversal` — a cursor that walks a distributed
  structure, automatically charging messages when it crosses hosts.
* :class:`~repro.net.congestion.CongestionReport` — the congestion measure
  ``C(n)`` of §1.1.
* :mod:`repro.net.failure` — optional failure injection used by tests to
  check that stale pointers are detected (the paper assumes no failures;
  this is an extension).
* :mod:`repro.net.churn` — live membership change: hosts joining,
  leaving gracefully (with record hand-off) or crashing (followed by
  structure self-repair); also an extension beyond the paper.
* :mod:`repro.net.topology` — pluggable link-cost models (flat,
  clustered, geo-distributed): per-hop weights, host clustering and the
  weighted congestion/latency dimension they unlock; the paper's flat
  model is the default and costs nothing when left implicit.
* :mod:`repro.net.faults` — deterministic fault injection: seeded
  :class:`~repro.net.faults.FaultPlan` rules drop / duplicate / delay
  deliveries and crash (or cluster-wide blackout) hosts at one choke
  point in delivery; ``faults=None`` costs nothing and stays
  byte-identical to a fault-free network.
"""

from repro.net.naming import Address, HostId, fresh_host_ids
from repro.net.message import Message, MessageKind, MessageLog
from repro.net.host import Host
from repro.net.network import Network, OperationStats, PendingDelivery, RoundReport
from repro.net.topology import (
    ClusteredTopology,
    FlatTopology,
    GeoTopology,
    Topology,
    TOPOLOGY_NAMES,
    resolve_topology,
    topology_from_config,
)
from repro.net.rpc import Traversal, RemoteRef
from repro.net.congestion import (
    CongestionReport,
    RoundCongestionReport,
    congestion_report,
    round_congestion_report,
    summarize_round_reports,
)
from repro.net.faults import (
    FAULT_NAMES,
    FaultPlan,
    FaultRule,
    faults_from_config,
    inject_host_faults,
    resolve_faults,
)
from repro.net.failure import FailureInjector
from repro.net.churn import ChurnController, ChurnEvent, churn_schedule

__all__ = [
    "ChurnController",
    "ChurnEvent",
    "churn_schedule",
    "Address",
    "HostId",
    "fresh_host_ids",
    "Message",
    "MessageKind",
    "MessageLog",
    "Host",
    "Network",
    "OperationStats",
    "PendingDelivery",
    "RoundReport",
    "Topology",
    "FlatTopology",
    "ClusteredTopology",
    "GeoTopology",
    "TOPOLOGY_NAMES",
    "resolve_topology",
    "topology_from_config",
    "Traversal",
    "RemoteRef",
    "CongestionReport",
    "RoundCongestionReport",
    "congestion_report",
    "round_congestion_report",
    "summarize_round_reports",
    "FailureInjector",
    "FaultPlan",
    "FaultRule",
    "FAULT_NAMES",
    "faults_from_config",
    "inject_host_faults",
    "resolve_faults",
]
