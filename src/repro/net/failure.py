"""Failure injection (an extension beyond the paper).

The paper explicitly assumes hosts do not fail (§1.1) and leaves fault
tolerance for multi-dimensional peer-to-peer structures as future work
(footnote 2).  This module provides a small failure injector so that the
test suite can exercise the error paths of the simulator (stale
addresses, dead hosts) and so that downstream users experimenting with
replication strategies have a hook to build on.
"""

from __future__ import annotations

import random
from typing import Iterable

from repro.net.faults import inject_host_faults
from repro.net.naming import HostId


class FailureInjector:
    """Fail and recover hosts of a network, optionally at random.

    A thin compatibility shim over the host-fault choke point of
    :mod:`repro.net.faults` (:func:`~repro.net.faults.inject_host_faults`),
    so scripted and plan-driven crashes share one code path.

    Parameters
    ----------
    network:
        The :class:`repro.net.network.Network` to operate on.
    rng:
        Source of randomness for :meth:`fail_random`.  Pass a seeded
        ``random.Random`` for reproducible chaos.
    """

    def __init__(self, network, rng: random.Random | None = None) -> None:
        self._network = network
        self._rng = rng or random.Random(0)

    def fail(self, host_ids: Iterable[HostId]) -> list[HostId]:
        """Fail every host in ``host_ids``; returns the list actually failed.

        Already-failed and unregistered ids are skipped, not re-failed —
        re-failing was never meaningful and double-counted victims.
        """
        return inject_host_faults(self._network, host_ids)

    def fail_random(self, fraction: float) -> list[HostId]:
        """Fail a random ``fraction`` of currently-alive hosts.

        Guarantees at least one victim whenever ``fraction > 0`` and any
        host is alive: plain truncation (``int(len(alive) * fraction)``)
        silently failed *nobody* on small networks, turning chaos tests
        into no-ops.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        alive = [
            host.host_id
            for host in self._network.hosts()
            if host.host_id not in self._network.failed_hosts
        ]
        count = int(len(alive) * fraction)
        if count == 0 and fraction > 0.0 and alive:
            count = 1
        victims = self._rng.sample(alive, count) if count else []
        return self.fail(victims)

    def recover_all(self) -> None:
        """Bring every failed host back online."""
        for host_id in list(self._network.failed_hosts):
            self._network.recover_host(host_id)

    @property
    def failed(self) -> set[HostId]:
        """The set of currently failed host ids."""
        return self._network.failed_hosts
