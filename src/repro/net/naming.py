"""Host identifiers and addresses.

The paper models a pointer between hosts as a pair ``(h, a)`` where ``h``
is the ID of a host and ``a`` is an address on that host where the item
being referred to is stored (§2.3).  :class:`Address` is exactly that
pair.  Host ids are plain integers; they carry no locality semantics
(the network is a complete graph).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

HostId = int
"""Type alias for host identifiers.  Hosts are numbered ``0 .. H-1``."""


@dataclass(frozen=True, slots=True)
class Address:
    """A global pointer: ``(host, slot)``.

    ``host`` identifies the host storing the item and ``slot`` is the
    host-local address returned by :meth:`repro.net.host.Host.store`.
    Addresses are immutable and hashable so they can be stored inside
    other hosts' memories and used as dictionary keys by the structures.
    """

    host: HostId
    slot: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Address(host={self.host}, slot={self.slot})"

    def colocated_with(self, other: "Address") -> bool:
        """Return ``True`` when both addresses live on the same host.

        Following a pointer between colocated addresses is free in the
        paper's cost model; following a pointer to a different host costs
        one message.
        """
        return self.host == other.host


def fresh_host_ids(count: int, start: int = 0) -> Iterator[HostId]:
    """Yield ``count`` consecutive host ids starting at ``start``.

    A tiny helper used by structure builders that need to allocate a pool
    of hosts (e.g. one host per key for skip graphs, or
    ``H = Θ(n log n / M)`` hosts for bucket skip-webs).
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return iter(range(start, start + count))
