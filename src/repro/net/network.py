"""The simulated peer-to-peer network.

The :class:`Network` is the single accounting boundary of the simulator.
Structures never talk to each other directly; they

* create hosts via :meth:`Network.add_host` / :meth:`Network.add_hosts`,
* store items on hosts and obtain :class:`~repro.net.naming.Address`
  pointers,
* dereference remote pointers via :meth:`Network.send` (or, more
  conveniently, via :class:`repro.net.rpc.Traversal`), which charges one
  message per host crossing.

Message counting for a single logical operation (one query, one insert)
is done with :meth:`Network.measure`, a context manager that snapshots
the counters::

    with network.measure() as op:
        structure.search(origin, key)
    assert op.messages <= expected

Two delivery modes are supported.  The default *immediate* mode charges
and delivers each message synchronously, which is what every
single-operation code path uses.  The *round-based* mode — entered with
:meth:`Network.rounds` — queues messages via :meth:`Network.post` and
delivers a whole round of them at once via :meth:`Network.run_round` /
:meth:`Network.run_rounds`, recording how many messages each host had to
absorb in each round.  This is the substrate under
:class:`repro.engine.executor.BatchExecutor`, which interleaves many
logical operations so that the paper's per-host congestion bounds
(O(log n / log log n) w.h.p., Theorem 2) can be *measured per round*
rather than inferred from pointer counts; see :mod:`repro.engine`.

Two accounting substrates are supported as well.  With ``trace=True``
(the default) every delivery materialises a :class:`Message` and flows
through the :class:`MessageLog` exactly as before — what tests and
debugging want.  With ``trace=False`` the network runs in **ledger
mode**: deliveries bump integer counters (total, per-kind, per-host,
per-round, per-measure snapshot) and allocate no message object, no log
entry and no per-delivery ticket in the round fast path.  Every counter
any benchmark reads — :class:`OperationStats`, :class:`RoundReport`
aggregates, congestion summaries — is byte-identical between the two
substrates; ledger mode only removes per-delivery allocation from the
hot path (see DESIGN.md §6).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator

from repro.errors import (
    FaultInjectedError,
    HostFailedError,
    StructureError,
    UnknownHostError,
)
from repro.net.faults import FaultPlan, resolve_faults
from repro.net.host import Host
from repro.net.message import Message, MessageKind, MessageLog
from repro.net.naming import Address, HostId
from repro.net.topology import Topology, resolve_topology

#: Module-wide default for ``Network(trace=...)`` when the caller does not
#: pass an explicit value.  Tests and interactive use keep full tracing;
#: the experiment registry flips this to ledger mode for wall-clock speed
#: (see :func:`ledger_mode`).
_DEFAULT_TRACE = True
#: Set by :func:`tracing_mode`: while locked, :func:`ledger_mode` is a
#: no-op, so an outer "I need message objects" request (the CLI's
#: ``--trace`` flag, a debugging session) wins over the experiment
#: registry's blanket ledger default.
_TRACE_LOCKED = False


def set_default_trace(enabled: bool) -> None:
    """Set the accounting substrate newly created networks default to."""
    global _DEFAULT_TRACE
    _DEFAULT_TRACE = bool(enabled)


def default_trace() -> bool:
    """The substrate a ``Network()`` created right now would use."""
    return _DEFAULT_TRACE


@contextmanager
def ledger_mode() -> Iterator[None]:
    """Create networks in ledger (``trace=False``) mode inside the block.

    Only affects networks constructed without an explicit ``trace``
    argument; an explicit ``Network(trace=True)`` still traces, and an
    enclosing :func:`tracing_mode` block turns this into a no-op.  Nests
    and restores the previous default on exit.
    """
    global _DEFAULT_TRACE
    if _TRACE_LOCKED:
        yield
        return
    previous = _DEFAULT_TRACE
    _DEFAULT_TRACE = False
    try:
        yield
    finally:
        _DEFAULT_TRACE = previous


@contextmanager
def tracing_mode() -> Iterator[None]:
    """Force full tracing for networks created inside the block.

    The counterpart of :func:`ledger_mode`, used by the CLI's ``--trace``
    flag to re-enable message objects under experiment functions that
    default to the ledger substrate; nested :func:`ledger_mode` blocks
    are suppressed while it is active.
    """
    global _DEFAULT_TRACE, _TRACE_LOCKED
    previous = (_DEFAULT_TRACE, _TRACE_LOCKED)
    _DEFAULT_TRACE = True
    _TRACE_LOCKED = True
    try:
        yield
    finally:
        _DEFAULT_TRACE, _TRACE_LOCKED = previous


@dataclass
class OperationStats:
    """Message counts observed during one :meth:`Network.measure` block.

    ``by_round`` and ``rounds`` are only populated while the network runs
    in round-based mode: they record how many of the measured messages
    were delivered in each network round, and how many distinct rounds the
    measured block spanned.
    """

    messages: int = 0
    by_kind: dict[MessageKind, int] = field(default_factory=dict)
    hosts_touched: set[HostId] = field(default_factory=set)
    by_round: dict[int, int] = field(default_factory=dict)
    #: Sum of link costs of the measured messages.  Stays 0 on a network
    #: without an explicit topology (the implicit flat default tracks
    #: message counts only); under ``FlatTopology`` it equals ``messages``.
    latency: int = 0

    @property
    def rounds(self) -> int:
        """Number of distinct network rounds the measured messages spanned."""
        return len(self.by_round)

    def count(self, kind: MessageKind) -> int:
        """Messages of one kind sent during the measured operation."""
        return self.by_kind.get(kind, 0)


@dataclass(frozen=True, slots=True)
class RoundReport:
    """Delivery summary of one network round.

    ``per_host`` maps each host to the number of messages it received
    during the round — the directly-measured per-host per-round
    congestion.  In ledger mode the dict is dropped after the round's
    maximum is folded into ``max_load`` / ``max_load_host`` (so long
    churn runs stop accumulating O(rounds × hosts) memory); the
    aggregates every benchmark reads are identical either way.
    ``dropped`` counts messages whose destination (or source) host had
    failed; those deliveries carry a :class:`HostFailedError` on their
    ticket instead of reaching the log.

    The topology-aware fields (``weight``, ``max_link_load`` /
    ``max_link``, ``max_cluster_load`` / ``max_cluster``) are only
    populated on a network with an explicit
    :class:`~repro.net.topology.Topology`; on the implicit flat default
    they keep their zero values and ``max_link`` / ``max_cluster`` stay
    ``None``.
    """

    index: int
    delivered: int
    per_host: dict[HostId, int]
    dropped: int = 0
    max_load: int = -1
    max_load_host: HostId | None = None
    weight: int = 0
    max_link_load: int = 0
    max_link: tuple[HostId, HostId] | None = None
    max_cluster_load: int = 0
    max_cluster: int | None = None
    #: Fault-injection tallies of the round (repro.net.faults); all stay
    #: zero on a network without an installed plan.
    injected_drops: int = 0
    duplicated: int = 0
    delayed: int = 0

    @property
    def max_host_load(self) -> int:
        """Largest number of messages any single host received this round."""
        if self.max_load >= 0:
            return self.max_load
        return max(self.per_host.values(), default=0)


class PendingDelivery:
    """A queued message awaiting the next :meth:`Network.run_round`.

    After the round runs, exactly one of ``delivered`` / ``error`` is set;
    :meth:`result` re-raises the delivery error, if any, in the caller's
    context (the :class:`~repro.engine.executor.BatchExecutor` uses this
    to fail only the one in-flight operation that touched a dead host).
    """

    __slots__ = ("src", "dst", "kind", "payload", "delivered", "error", "deferred")

    def __init__(self, src: HostId, dst: HostId, kind: MessageKind, payload: Any) -> None:
        self.src = src
        self.dst = dst
        self.kind = kind
        self.payload = payload
        self.delivered: Message | None = None
        self.error: Exception | None = None
        # Set by a fault plan's "delay" verb: the ticket is parked for a
        # later round and is not yet resolved (``delivered`` stays None
        # in ledger mode even after success, so the flag — not the
        # fields — is the executor's "still in flight" signal).
        self.deferred = False

    def result(self) -> Message | None:
        """The delivered message, or raise the delivery error."""
        if self.error is not None:
            raise self.error
        return self.delivered


class _DeliveredTicket:
    """The shared always-succeeds ticket of the ledger-mode fast path.

    When no host has failed at post time, ledger mode queues deliveries
    as plain tuples and hands every caller this singleton instead of a
    fresh :class:`PendingDelivery`.  Failures injected by the engine's
    hooks happen *between* rounds (after delivery, before the next
    posts), so any post that could observe a failed host takes the
    ticketed slow path and error reporting is unchanged.
    """

    __slots__ = ()

    #: The fast-path singleton is only handed out when no fault plan is
    #: installed, so it can never be deferred.
    deferred = False

    def result(self) -> None:
        return None


_OK_TICKET = _DeliveredTicket()


class Network:
    """Registry of hosts plus message accounting.

    Parameters
    ----------
    default_memory_limit:
        Memory budget given to hosts created through :meth:`add_host` when
        no explicit limit is provided.  ``None`` (the default) leaves
        hosts unbounded, which is appropriate when memory usage is being
        measured rather than enforced.
    keep_messages:
        Whether the underlying :class:`MessageLog` stores message objects
        (useful in tests) or only counters (faster for large benchmarks).
    trace:
        ``True`` (the default outside :func:`ledger_mode`) materialises a
        :class:`Message` per delivery; ``False`` runs the zero-allocation
        ledger substrate.  All counters are identical either way.
    round_report_retention:
        Keep at most this many full :class:`RoundReport` entries per round
        session (oldest dropped first); ``None`` keeps them all.  The
        running congestion aggregates (:meth:`round_congestion_summary`)
        cover the whole session regardless.
    topology:
        Link-cost model: a :class:`~repro.net.topology.Topology`
        instance, one of the names ``"flat"`` / ``"clustered"`` /
        ``"geo"``, or ``None`` (the default).  ``None`` is the implicit
        flat model — every counter is byte-identical to the pre-topology
        network and no per-link accounting runs.  Any explicit topology
        (including ``FlatTopology``) additionally charges
        ``link_cost(src, dst)`` per delivery into weighted per-link /
        per-cluster congestion aggregates and the ``latency`` counters.
    """

    def __init__(
        self,
        default_memory_limit: int | None = None,
        keep_messages: bool = False,
        trace: bool | None = None,
        round_report_retention: int | None = None,
        topology: Topology | str | None = None,
        faults: FaultPlan | str | None = None,
    ) -> None:
        self.default_memory_limit = default_memory_limit
        if trace is None:
            # Asking for stored message objects implies the tracing
            # substrate even under an ambient ledger_mode() default.
            self._trace = True if keep_messages else _DEFAULT_TRACE
        else:
            self._trace = bool(trace)
            if keep_messages and not self._trace:
                raise ValueError(
                    "keep_messages=True requires the tracing substrate; "
                    "ledger mode (trace=False) never materialises messages"
                )
        self._hosts: dict[HostId, Host] = {}
        self._log = MessageLog(keep_messages=keep_messages)
        self._next_host_id = 0
        self._measure_stack: list[OperationStats] = []
        self._failed_hosts: set[HostId] = set()
        # Bumped on every membership change (join, leave, failure,
        # recovery) so that caches keyed on host layout — e.g. the
        # BatchExecutor's per-origin route cache — can cheaply detect
        # that their entries may now point at dead or departed hosts.
        self._membership_epoch = 0
        # Callables invoked on every membership event ("add" / "remove" /
        # "fail" / "recover", host_id).  The durability layer subscribes
        # here so membership changes land in the operation log; empty by
        # default and deliberately excluded from pickled snapshots.
        self._membership_listeners: list[Callable[[str, HostId], None]] = []
        # alive_host_ids() cache, invalidated by membership-epoch bumps.
        self._alive_cache: list[HostId] = []
        self._alive_cache_epoch = -1
        # Round-based delivery state (inactive in the default immediate mode).
        self._round_mode = False
        self._pending: list[PendingDelivery] = []
        self._pending_fast: list[tuple[HostId, HostId, MessageKind]] = []
        self._round_index = 0
        self._round_per_host: dict[HostId, int] = {}
        self._round_delivered = 0
        self._round_reports: list[RoundReport] = []
        self._round_report_retention = round_report_retention
        # Whole-session congestion aggregates, maintained round by round so
        # summaries never have to re-scan the stored reports.
        self._session_per_round_max: list[int] = []
        self._session_delivered = 0
        self._session_busiest_host: HostId | None = None
        self._session_busiest_round: int | None = None
        self._session_busiest_load = 0
        # Topology-aware accounting.  ``None`` means the implicit flat
        # model: link_cost() answers 1 and none of the weighted state
        # below is ever touched, keeping the default hot paths (and their
        # counters) byte-identical to the pre-topology network.
        self._topology = resolve_topology(topology)
        self._round_per_link: dict[tuple[HostId, HostId], int] = {}
        self._round_per_cluster: dict[int, int] = {}
        self._round_weight = 0
        self._session_weight = 0
        self._session_per_round_max_link: list[int] = []
        self._session_per_round_max_cluster: list[int] = []
        self._session_busiest_link: tuple[HostId, HostId] | None = None
        self._session_busiest_link_load = 0
        self._session_busiest_link_round: int | None = None
        self._session_busiest_cluster: int | None = None
        self._session_busiest_cluster_load = 0
        # Fault injection (repro.net.faults).  ``None`` means no plan:
        # the delivery fast paths stay enabled and every counter is
        # byte-identical to a network built before the subsystem existed.
        self._faults = resolve_faults(faults)
        self._delayed: list[tuple[int, PendingDelivery]] = []
        self._round_injected_drops = 0
        self._round_duplicated = 0
        self._round_delayed = 0

    @property
    def trace(self) -> bool:
        """Whether deliveries materialise :class:`Message` objects."""
        return self._trace

    @property
    def topology(self) -> Topology | None:
        """The explicit link-cost model, or ``None`` for the implicit flat one."""
        return self._topology

    def set_topology(self, topology: Topology | str | None) -> None:
        """Install (or clear) the link-cost model.

        Must happen outside a round session: per-link aggregates of a
        session in flight would silently mix cost models otherwise.
        Already-registered hosts are announced to the new topology.
        """
        if self._round_mode:
            raise RuntimeError("cannot change topology during a round session")
        self._topology = resolve_topology(topology)
        if self._topology is not None:
            for host_id in self._hosts:
                self._topology.on_host_added(host_id)

    @property
    def faults(self) -> FaultPlan | None:
        """The installed fault plan, or ``None`` (the fault-free default)."""
        return self._faults

    def set_faults(self, faults: FaultPlan | str | None) -> None:
        """Install (or clear) the fault plan.

        Must happen outside a round session: deliveries already queued on
        the ledger fast path received the shared always-succeeds ticket
        and could not report an injected fault.  With a plan installed
        every post is ticketed, so faults always land on a real ticket.
        """
        if self._round_mode:
            raise RuntimeError("cannot change the fault plan during a round session")
        self._faults = resolve_faults(faults)

    def link_cost(self, src: HostId, dst: HostId) -> int:
        """Cost of one ``src -> dst`` message under the current topology.

        Self-sends are free (cost 0) as in the paper's model; without an
        explicit topology every inter-host link costs 1.
        """
        if src == dst:
            return 0
        if self._topology is None:
            return 1
        return self._topology.link_cost(src, dst)

    def __getstate__(self) -> dict[str, Any]:
        # Membership listeners are live observers (typically the storage
        # controller holding open file handles); a pickled snapshot must
        # capture the network's *state*, not its subscribers.
        state = self.__dict__.copy()
        state["_membership_listeners"] = []
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        if "_topology" not in state:
            # Blob pickled before the topology seam existed: restore it
            # onto the implicit flat default with empty weighted state.
            self._topology = None
            self._round_per_link = {}
            self._round_per_cluster = {}
            self._round_weight = 0
            self._session_weight = 0
            self._session_per_round_max_link = []
            self._session_per_round_max_cluster = []
            self._session_busiest_link = None
            self._session_busiest_link_load = 0
            self._session_busiest_link_round = None
            self._session_busiest_cluster = None
            self._session_busiest_cluster_load = 0
        if "_faults" not in state:
            # Blob pickled before the fault-injection seam existed.
            self._faults = None
            self._delayed = []
            self._round_injected_drops = 0
            self._round_duplicated = 0
            self._round_delayed = 0

    # ------------------------------------------------------------------ #
    # membership event listeners
    # ------------------------------------------------------------------ #
    def add_membership_listener(self, listener: Callable[[str, HostId], None]) -> None:
        """Subscribe to membership events.

        ``listener(event, host_id)`` is called synchronously on every
        ``"add"`` / ``"remove"`` / ``"fail"`` / ``"recover"``, after the
        change (and its epoch bump) has been applied.  The durability
        layer uses this to journal membership changes; listeners are not
        part of pickled network state.
        """
        self._membership_listeners.append(listener)

    def remove_membership_listener(self, listener: Callable[[str, HostId], None]) -> None:
        """Unsubscribe a previously added membership listener."""
        self._membership_listeners.remove(listener)

    def _notify_membership(self, event: str, host_id: HostId) -> None:
        for listener in self._membership_listeners:
            listener(event, host_id)

    # ------------------------------------------------------------------ #
    # host management
    # ------------------------------------------------------------------ #
    def add_host(self, memory_limit: int | None = None, host_id: HostId | None = None) -> Host:
        """Create and register a new host, returning it.

        ``host_id`` may be provided for deterministic layouts; otherwise
        ids are assigned sequentially.
        """
        if host_id is None:
            host_id = self._next_host_id
            self._next_host_id += 1
        elif host_id in self._hosts:
            raise ValueError(f"host id {host_id} already registered")
        else:
            self._next_host_id = max(self._next_host_id, host_id + 1)
        limit = memory_limit if memory_limit is not None else self.default_memory_limit
        host = Host(host_id=host_id, memory_limit=limit)
        self._hosts[host_id] = host
        self._membership_epoch += 1
        if self._topology is not None:
            self._topology.on_host_added(host_id)
        if self._membership_listeners:
            self._notify_membership("add", host_id)
        return host

    def remove_host(self, host_id: HostId, force: bool = False) -> Host:
        """Retire a host from the network (a graceful or post-repair leave).

        The host must be empty — its records handed off or repaired away —
        unless ``force`` is given, in which case any remaining slots are
        abandoned (their addresses become permanently unresolvable).
        Returns the removed :class:`Host` for inspection.
        """
        host = self.host(host_id)
        if host.memory_used and not force:
            raise StructureError(
                f"host {host_id} still stores {host.memory_used} item(s); "
                "migrate its records before removing it (or pass force=True)"
            )
        del self._hosts[host_id]
        self._failed_hosts.discard(host_id)
        self._membership_epoch += 1
        if self._topology is not None:
            self._topology.on_host_removed(host_id)
        if self._membership_listeners:
            self._notify_membership("remove", host_id)
        return host

    def add_hosts(self, count: int, memory_limit: int | None = None) -> list[Host]:
        """Create ``count`` hosts at once."""
        return [self.add_host(memory_limit=memory_limit) for _ in range(count)]

    def host(self, host_id: HostId) -> Host:
        """Return the host with the given id."""
        try:
            return self._hosts[host_id]
        except KeyError as exc:
            raise UnknownHostError(f"unknown host {host_id}") from exc

    def hosts(self) -> Iterator[Host]:
        """Iterate over all registered hosts."""
        return iter(self._hosts.values())

    def alive_host_ids(self) -> list[HostId]:
        """Ids of every registered host that has not failed, in id order.

        Cached between membership changes (joins, leaves, failures and
        recoveries all bump :attr:`membership_epoch`), so the per-batch
        and per-repair callers no longer pay a linear scan each time.
        Returns a fresh copy; the cache itself is never handed out.
        """
        if self._alive_cache_epoch != self._membership_epoch:
            self._alive_cache = [
                host_id for host_id in self._hosts if host_id not in self._failed_hosts
            ]
            self._alive_cache_epoch = self._membership_epoch
        return list(self._alive_cache)

    @property
    def membership_epoch(self) -> int:
        """Counter bumped on every join, leave, failure or recovery.

        Consumers holding host-layout-dependent caches compare this
        against the epoch they cached at and invalidate on mismatch.
        """
        return self._membership_epoch

    @property
    def host_count(self) -> int:
        """The paper's ``H``."""
        return len(self._hosts)

    def __contains__(self, host_id: HostId) -> bool:
        return host_id in self._hosts

    # ------------------------------------------------------------------ #
    # storage helpers
    # ------------------------------------------------------------------ #
    def store(self, host_id: HostId, item: Any) -> Address:
        """Store ``item`` on host ``host_id`` and return its address."""
        return self.host(host_id).store(item)

    def load(self, address: Address, check_alive: bool = True) -> Any:
        """Dereference ``address`` *without* charging a message.

        Structures must only call this for local dereferences, or after
        having charged the hop via :meth:`send` /
        :class:`~repro.net.rpc.Traversal`.  ``check_alive=False`` skips
        the failure-injection liveness check; it is reserved for
        structural bookkeeping that must apply atomically (update
        propagation, reference recounts) and must therefore not be
        interruptible halfway by an injected failure — operation *routing*
        always keeps the check on.
        """
        if check_alive and address.host in self._failed_hosts:
            raise HostFailedError(f"host {address.host} has failed")
        return self.host(address.host).load(address)

    def free(self, address: Address) -> Any:
        """Remove the item stored at ``address`` and return it."""
        return self.host(address.host).free(address)

    def replace(self, address: Address, item: Any) -> None:
        """Overwrite the item stored at ``address``."""
        self.host(address.host).replace(address, item)

    # ------------------------------------------------------------------ #
    # messaging
    # ------------------------------------------------------------------ #
    def send(
        self,
        src: HostId,
        dst: HostId,
        kind: MessageKind = MessageKind.QUERY,
        payload: Any = None,
    ) -> Message | None:
        """Record one message from ``src`` to ``dst``.

        Sending a message to oneself is free (returns ``None``) — the
        paper only charges for *inter-host* communication.  In ledger
        mode the delivery is counted but no :class:`Message` is created,
        so the return value is ``None`` for remote sends as well.

        With a fault plan installed (and outside a round session, whose
        deliveries are decided in :meth:`run_round`), the plan decides
        each remote send: a drop raises :class:`FaultInjectedError`
        uncharged, a duplicate charges the delivery twice, and a delay
        degenerates to an immediate delivery — immediate mode has no
        round clock to defer to — but is still tallied as delayed.
        """
        if src not in self._hosts:
            raise UnknownHostError(f"unknown source host {src}")
        if dst not in self._hosts:
            raise UnknownHostError(f"unknown destination host {dst}")
        self._check_alive(dst)
        if src == dst:
            return None
        faults = self._faults
        if faults is not None and not self._round_mode:
            action = faults.decide(self, None, src, dst, kind)
            if action is not None:
                verb = action[0]
                if verb == "drop":
                    self._log.note_drop()
                    raise FaultInjectedError(
                        f"message {src} -> {dst} dropped by the fault plan"
                    )
                if verb == "duplicate":
                    self._log.note_duplicate()
                    self._record_delivery(src, dst, kind, payload)
                else:
                    self._log.note_delay()
        return self._record_delivery(src, dst, kind, payload)

    def _record_delivery(
        self, src: HostId, dst: HostId, kind: MessageKind, payload: Any
    ) -> Message | None:
        """Log one inter-host message and update measurement/round counters."""
        if self._trace:
            message = self._log.record(src=src, dst=dst, kind=kind, payload=payload)
        else:
            self._log.tally(src, dst, kind)
            message = None
        cost = 0
        if self._topology is not None:
            cost = self._topology.link_cost(src, dst)
        for stats in self._measure_stack:
            stats.messages += 1
            stats.by_kind[kind] = stats.by_kind.get(kind, 0) + 1
            stats.hosts_touched.add(src)
            stats.hosts_touched.add(dst)
            stats.latency += cost
            if self._round_mode:
                stats.by_round[self._round_index] = (
                    stats.by_round.get(self._round_index, 0) + 1
                )
        if self._round_mode:
            self._round_per_host[dst] = self._round_per_host.get(dst, 0) + 1
            self._round_delivered += 1
            if self._topology is not None:
                link = (src, dst)
                self._round_per_link[link] = self._round_per_link.get(link, 0) + cost
                cluster = self._topology.cluster_of(dst)
                self._round_per_cluster[cluster] = (
                    self._round_per_cluster.get(cluster, 0) + cost
                )
                self._round_weight += cost
        return message

    @property
    def message_log(self) -> MessageLog:
        """The global message log (lifetime counters)."""
        return self._log

    @property
    def total_messages(self) -> int:
        """Total messages ever sent on this network."""
        return len(self._log)

    @contextmanager
    def measure(self) -> Iterator[OperationStats]:
        """Measure the messages sent while the ``with`` body runs.

        Measurements nest: an outer harness can measure a whole workload
        while individual operations are measured inside it.
        """
        stats = OperationStats()
        self._measure_stack.append(stats)
        try:
            yield stats
        finally:
            self._measure_stack.pop()

    # ------------------------------------------------------------------ #
    # round-based delivery (batched execution mode)
    # ------------------------------------------------------------------ #
    @property
    def in_round_mode(self) -> bool:
        """Whether the network currently queues messages into rounds."""
        return self._round_mode

    @property
    def rounds_completed(self) -> int:
        """Number of rounds delivered since the last :meth:`rounds` entry."""
        return self._round_index

    @property
    def round_reports(self) -> list[RoundReport]:
        """Per-round delivery reports of the current / most recent round session.

        Subject to ``round_report_retention``; the whole-session
        aggregates live in :meth:`round_congestion_summary` either way.
        """
        return list(self._round_reports)

    def round_congestion_summary(
        self,
    ) -> tuple[int, int, tuple[int, ...], HostId | None, int | None]:
        """Whole-session congestion aggregates, maintained incrementally.

        Returns ``(rounds, delivered, per_round_max, busiest_host,
        busiest_round)`` for the current / most recent round session —
        the raw material of
        :func:`repro.net.congestion.round_congestion_report`, computed in
        a single pass as rounds close instead of re-scanning the stored
        reports (which ledger mode may have truncated).
        """
        return (
            len(self._session_per_round_max),
            self._session_delivered,
            tuple(self._session_per_round_max),
            self._session_busiest_host,
            self._session_busiest_round,
        )

    def topology_congestion_summary(self) -> dict[str, Any] | None:
        """Weighted (topology-aware) session aggregates, or ``None``.

        ``None`` on a network without an explicit topology — the
        per-link / per-cluster dimension is only tracked when a
        :class:`~repro.net.topology.Topology` is installed.  Otherwise a
        dict of whole-session aggregates mirroring
        :meth:`round_congestion_summary` in the weighted dimension:
        total delivered ``weight``, per-round maxima and the busiest
        link / cluster with their loads.
        """
        if self._topology is None:
            return None
        return {
            "rounds": len(self._session_per_round_max_link),
            "weight": self._session_weight,
            "per_round_max_link": tuple(self._session_per_round_max_link),
            "per_round_max_cluster": tuple(self._session_per_round_max_cluster),
            "busiest_link": self._session_busiest_link,
            "busiest_link_load": self._session_busiest_link_load,
            "busiest_link_round": self._session_busiest_link_round,
            "busiest_cluster": self._session_busiest_cluster,
            "busiest_cluster_load": self._session_busiest_cluster_load,
        }

    @contextmanager
    def rounds(self) -> Iterator["Network"]:
        """Enter round-based delivery mode for the ``with`` body.

        Messages posted with :meth:`post` are queued and only delivered
        (and charged) by :meth:`run_round`.  Direct :meth:`send` calls
        remain legal inside the block — they are charged immediately,
        attributed to the round currently being assembled, and counted in
        that round's report exactly like queued deliveries (a trailing
        send after the final :meth:`run_round` gets a closing report of
        its own on exit).  Round counters are reset on entry so that each
        batch measures its own congestion.
        """
        if self._round_mode:
            raise RuntimeError("network is already in round-based mode")
        self._round_mode = True
        self._round_index = 0
        self._round_per_host = {}
        self._round_delivered = 0
        self._round_reports = []
        self._pending = []
        self._pending_fast = []
        self._delayed = []
        self._round_injected_drops = 0
        self._round_duplicated = 0
        self._round_delayed = 0
        self._session_per_round_max = []
        self._session_delivered = 0
        self._session_busiest_host = None
        self._session_busiest_round = None
        self._session_busiest_load = 0
        self._round_per_link = {}
        self._round_per_cluster = {}
        self._round_weight = 0
        self._session_weight = 0
        self._session_per_round_max_link = []
        self._session_per_round_max_cluster = []
        self._session_busiest_link = None
        self._session_busiest_link_load = 0
        self._session_busiest_link_round = None
        self._session_busiest_cluster = None
        self._session_busiest_cluster_load = 0
        try:
            yield self
        finally:
            if self._round_per_host:
                # Direct sends charged after the last run_round: close
                # them out so no delivered traffic is missing from the
                # session's reports.
                self._close_round(dropped=0)
            self._round_mode = False
            self._pending = []
            self._pending_fast = []
            self._delayed = []
            self._round_per_host = {}
            self._round_delivered = 0
            self._round_per_link = {}
            self._round_per_cluster = {}
            self._round_weight = 0
            self._round_injected_drops = 0
            self._round_duplicated = 0
            self._round_delayed = 0

    def post(
        self,
        src: HostId,
        dst: HostId,
        kind: MessageKind = MessageKind.QUERY,
        payload: Any = None,
    ) -> PendingDelivery:
        """Queue one message for the next round; returns its delivery ticket.

        Host existence is validated immediately; host *liveness* is only
        checked at delivery time (a host may fail between posting and the
        round running), in which case the ticket carries the
        :class:`HostFailedError` instead of the whole round failing.

        In ledger mode, while no host is marked failed, deliveries are
        queued as plain tuples and the shared always-succeeds ticket is
        returned — no per-delivery allocation.  The moment any host is
        failed, posts fall back to real tickets so failure reporting is
        exactly as in trace mode.  (The engine's failure hooks run
        between rounds, so a post can never race a failure it should
        have observed; see :class:`_DeliveredTicket`.)
        """
        if not self._round_mode:
            raise RuntimeError("post() requires round-based mode; see Network.rounds()")
        if src not in self._hosts:
            raise UnknownHostError(f"unknown source host {src}")
        if dst not in self._hosts:
            raise UnknownHostError(f"unknown destination host {dst}")
        if (
            not self._trace
            and not self._failed_hosts
            and payload is None
            and self._faults is None
        ):
            self._pending_fast.append((src, dst, kind))
            return _OK_TICKET  # type: ignore[return-value]
        ticket = PendingDelivery(src=src, dst=dst, kind=kind, payload=payload)
        self._pending.append(ticket)
        return ticket

    def run_round(self) -> RoundReport:
        """Deliver every queued message, closing out one round.

        Deliveries to (or from) failed hosts are dropped and recorded on
        their tickets; all other queued messages are charged and logged.
        Self-sends deliver for free, as in immediate mode.

        With a fault plan installed, the plan's host rules are applied
        first (:meth:`FaultPlan.begin_round` — crash-stop semantics: a
        delivery queued to a host that crashes this round fails on its
        ticket), deliveries deferred by earlier "delay" verbs come due,
        and each fresh delivery is decided once: drop (ticket fails with
        :class:`FaultInjectedError`, uncharged), duplicate (charged
        twice) or delay (parked ``delay_rounds`` rounds).
        """
        if not self._round_mode:
            raise RuntimeError("run_round() requires round-based mode; see Network.rounds()")
        faults = self._faults
        if faults is not None:
            faults.begin_round(self, self._round_index)
        pending, self._pending = self._pending, []
        pending_fast, self._pending_fast = self._pending_fast, []
        if self._delayed:
            due = [ticket for when, ticket in self._delayed if when <= self._round_index]
            if due:
                self._delayed = [
                    (when, ticket)
                    for when, ticket in self._delayed
                    if when > self._round_index
                ]
                # Deferred deliveries were posted earlier: they deliver
                # ahead of this round's fresh posts, in original order.
                pending = due + pending
        dropped = 0
        failed = self._failed_hosts
        for src, dst, kind in pending_fast:
            # Ledger fast path: tuples queued while no host was failed.
            # A failure landing mid-assembly cannot be reported through
            # the shared ticket these posts received, so it must not be
            # swallowed either — fail loudly instead of silently
            # diverging from what a traced ticket would have raised.
            # (Unreachable from the engine: its failure hooks run
            # between rounds, when nothing is queued.)
            if failed and (src in failed or dst in failed):
                raise RuntimeError(
                    f"host failed between post() and run_round() with the ledger "
                    f"fast path active (delivery {src} -> {dst}); inject "
                    "mid-assembly failures on a trace=True network"
                )
            if src == dst:
                continue
            self._record_delivery(src, dst, kind, None)
        for ticket in pending:
            failed_host = self._first_failed(ticket.src, ticket.dst)
            if failed_host is not None:
                ticket.deferred = False
                ticket.error = HostFailedError(f"host {failed_host} has failed")
                dropped += 1
                continue
            if ticket.src == ticket.dst:
                # Self-delivery is free in the cost model: resolved, but
                # neither logged nor counted as a delivered message.
                ticket.deferred = False
                continue
            if faults is not None and not ticket.deferred:
                action = faults.decide(
                    self, self._round_index, ticket.src, ticket.dst, ticket.kind
                )
                if action is not None:
                    verb = action[0]
                    if verb == "drop":
                        ticket.error = FaultInjectedError(
                            f"delivery {ticket.src} -> {ticket.dst} dropped "
                            "by the fault plan"
                        )
                        self._log.note_drop()
                        self._round_injected_drops += 1
                        continue
                    if verb == "delay":
                        ticket.deferred = True
                        self._delayed.append((self._round_index + action[1], ticket))
                        self._log.note_delay()
                        self._round_delayed += 1
                        continue
                    # duplicate: the delivery is charged twice.
                    ticket.delivered = self._record_delivery(
                        ticket.src, ticket.dst, ticket.kind, ticket.payload
                    )
                    self._record_delivery(
                        ticket.src, ticket.dst, ticket.kind, ticket.payload
                    )
                    self._log.note_duplicate()
                    self._round_duplicated += 1
                    continue
            ticket.deferred = False
            ticket.delivered = self._record_delivery(
                ticket.src, ticket.dst, ticket.kind, ticket.payload
            )
        # ``_round_delivered`` counts every charged message attributed to
        # this round — queued deliveries and direct send() calls alike —
        # so the report stays consistent with ``per_host``.
        return self._close_round(dropped=dropped)

    def _close_round(self, dropped: int) -> RoundReport:
        """Fold the assembling round into a report and the session aggregates."""
        per_host = self._round_per_host
        max_load = 0
        max_load_host: HostId | None = None
        for host_id, load in per_host.items():
            if load > max_load:
                max_load = load
                max_load_host = host_id
        weight = 0
        max_link_load = 0
        max_link: tuple[HostId, HostId] | None = None
        max_cluster_load = 0
        max_cluster: int | None = None
        if self._topology is not None:
            weight = self._round_weight
            for link, load in self._round_per_link.items():
                if load > max_link_load:
                    max_link_load = load
                    max_link = link
            for cluster, load in self._round_per_cluster.items():
                if load > max_cluster_load:
                    max_cluster_load = load
                    max_cluster = cluster
        report = RoundReport(
            index=self._round_index,
            delivered=self._round_delivered,
            per_host=per_host if self._trace else {},
            dropped=dropped,
            max_load=max_load,
            max_load_host=max_load_host,
            weight=weight,
            max_link_load=max_link_load,
            max_link=max_link,
            max_cluster_load=max_cluster_load,
            max_cluster=max_cluster,
            injected_drops=self._round_injected_drops,
            duplicated=self._round_duplicated,
            delayed=self._round_delayed,
        )
        self._round_reports.append(report)
        retention = self._round_report_retention
        if retention is not None and len(self._round_reports) > retention:
            del self._round_reports[: len(self._round_reports) - retention]
        self._session_per_round_max.append(max_load)
        self._session_delivered += self._round_delivered
        if max_load > self._session_busiest_load:
            self._session_busiest_load = max_load
            self._session_busiest_host = max_load_host
            self._session_busiest_round = self._round_index
        if self._topology is not None:
            self._session_weight += weight
            self._session_per_round_max_link.append(max_link_load)
            self._session_per_round_max_cluster.append(max_cluster_load)
            if max_link_load > self._session_busiest_link_load:
                self._session_busiest_link_load = max_link_load
                self._session_busiest_link = max_link
                self._session_busiest_link_round = self._round_index
            if max_cluster_load > self._session_busiest_cluster_load:
                self._session_busiest_cluster_load = max_cluster_load
                self._session_busiest_cluster = max_cluster
            self._round_per_link = {}
            self._round_per_cluster = {}
            self._round_weight = 0
        self._round_index += 1
        self._round_per_host = {}
        self._round_delivered = 0
        self._round_injected_drops = 0
        self._round_duplicated = 0
        self._round_delayed = 0
        return report

    def run_rounds(
        self,
        steppers: Iterable[Callable[[], bool]],
        max_rounds: int = 1_000_000,
        on_round: Callable[[RoundReport], None] | None = None,
    ) -> list[RoundReport]:
        """Drive a set of concurrent step functions to completion, round by round.

        Each *stepper* represents one in-flight logical operation: when
        called it does its local work, posts at most a few messages for
        the upcoming round, and returns ``True`` while it wants to keep
        running.  One call to every live stepper plus one
        :meth:`run_round` is one network round.  ``on_round`` (if given)
        runs after each round — failure-injection tests use it to kill
        hosts mid-batch.  Returns the reports of every round that actually
        delivered messages.
        """
        if not self._round_mode:
            raise RuntimeError("run_rounds() requires round-based mode; see Network.rounds()")
        reports: list[RoundReport] = []
        active = list(steppers)
        passes = 0
        while active:
            # Guard on scheduler passes, not delivered rounds: a stepper
            # that stays active without ever posting must still trip the
            # bound instead of spinning forever.
            if passes >= max_rounds:
                raise RuntimeError(f"round-based execution exceeded {max_rounds} rounds")
            passes += 1
            active = [stepper for stepper in active if stepper()]
            # With a fault plan installed, a pass with live steppers always
            # closes a round even when nothing was posted: deferred
            # deliveries and backoff timers are keyed to the round clock,
            # so the clock must advance while operations sit idle.  Without
            # a plan the condition is unchanged (faults=None identity).
            if (
                self._pending
                or self._pending_fast
                or (self._faults is not None and (active or self._delayed))
            ):
                report = self.run_round()
                reports.append(report)
                if on_round is not None:
                    on_round(report)
        return reports

    def _first_failed(self, *host_ids: HostId) -> HostId | None:
        for host_id in host_ids:
            if host_id in self._failed_hosts:
                return host_id
        return None

    # ------------------------------------------------------------------ #
    # failure injection hooks (extension; the paper assumes no failures)
    # ------------------------------------------------------------------ #
    def fail_host(self, host_id: HostId) -> None:
        """Mark a host as failed; any traffic to it raises :class:`HostFailedError`."""
        self.host(host_id).failed = True
        self._failed_hosts.add(host_id)
        self._membership_epoch += 1
        if self._membership_listeners:
            self._notify_membership("fail", host_id)

    def recover_host(self, host_id: HostId) -> None:
        """Bring a failed host back."""
        self.host(host_id).failed = False
        self._failed_hosts.discard(host_id)
        self._membership_epoch += 1
        if self._membership_listeners:
            self._notify_membership("recover", host_id)

    @property
    def failed_hosts(self) -> set[HostId]:
        return set(self._failed_hosts)

    def _check_alive(self, host_id: HostId) -> None:
        if host_id in self._failed_hosts:
            raise HostFailedError(f"host {host_id} has failed")

    # ------------------------------------------------------------------ #
    # measurement summaries
    # ------------------------------------------------------------------ #
    def memory_profile(self) -> dict[HostId, int]:
        """Items stored per host — the measured per-host memory ``M``."""
        return {host.host_id: host.memory_used for host in self.hosts()}

    def max_memory_used(self) -> int:
        """Largest number of items stored on any single host."""
        profile = self.memory_profile()
        return max(profile.values()) if profile else 0

    def reset_counters(self) -> None:
        """Clear the message log and per-host reference counters.

        Structures call this after construction so that benchmarks measure
        only query/update traffic, matching the paper's per-operation cost
        definitions.
        """
        self._log.clear()
        for host in self.hosts():
            host.reset_reference_counts()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Network(hosts={self.host_count}, messages={self.total_messages})"
