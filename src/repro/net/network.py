"""The simulated peer-to-peer network.

The :class:`Network` is the single accounting boundary of the simulator.
Structures never talk to each other directly; they

* create hosts via :meth:`Network.add_host` / :meth:`Network.add_hosts`,
* store items on hosts and obtain :class:`~repro.net.naming.Address`
  pointers,
* dereference remote pointers via :meth:`Network.send` (or, more
  conveniently, via :class:`repro.net.rpc.Traversal`), which charges one
  message per host crossing.

Message counting for a single logical operation (one query, one insert)
is done with :meth:`Network.measure`, a context manager that snapshots
the counters::

    with network.measure() as op:
        structure.search(origin, key)
    assert op.messages <= expected
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.errors import HostFailedError, UnknownHostError
from repro.net.host import Host
from repro.net.message import Message, MessageKind, MessageLog
from repro.net.naming import Address, HostId


@dataclass
class OperationStats:
    """Message counts observed during one :meth:`Network.measure` block."""

    messages: int = 0
    by_kind: dict[MessageKind, int] = field(default_factory=dict)
    hosts_touched: set[HostId] = field(default_factory=set)

    def count(self, kind: MessageKind) -> int:
        """Messages of one kind sent during the measured operation."""
        return self.by_kind.get(kind, 0)


class Network:
    """Registry of hosts plus message accounting.

    Parameters
    ----------
    default_memory_limit:
        Memory budget given to hosts created through :meth:`add_host` when
        no explicit limit is provided.  ``None`` (the default) leaves
        hosts unbounded, which is appropriate when memory usage is being
        measured rather than enforced.
    keep_messages:
        Whether the underlying :class:`MessageLog` stores message objects
        (useful in tests) or only counters (faster for large benchmarks).
    """

    def __init__(
        self,
        default_memory_limit: int | None = None,
        keep_messages: bool = False,
    ) -> None:
        self.default_memory_limit = default_memory_limit
        self._hosts: dict[HostId, Host] = {}
        self._log = MessageLog(keep_messages=keep_messages)
        self._next_host_id = 0
        self._measure_stack: list[OperationStats] = []
        self._failed_hosts: set[HostId] = set()

    # ------------------------------------------------------------------ #
    # host management
    # ------------------------------------------------------------------ #
    def add_host(self, memory_limit: int | None = None, host_id: HostId | None = None) -> Host:
        """Create and register a new host, returning it.

        ``host_id`` may be provided for deterministic layouts; otherwise
        ids are assigned sequentially.
        """
        if host_id is None:
            host_id = self._next_host_id
            self._next_host_id += 1
        elif host_id in self._hosts:
            raise ValueError(f"host id {host_id} already registered")
        else:
            self._next_host_id = max(self._next_host_id, host_id + 1)
        limit = memory_limit if memory_limit is not None else self.default_memory_limit
        host = Host(host_id=host_id, memory_limit=limit)
        self._hosts[host_id] = host
        return host

    def add_hosts(self, count: int, memory_limit: int | None = None) -> list[Host]:
        """Create ``count`` hosts at once."""
        return [self.add_host(memory_limit=memory_limit) for _ in range(count)]

    def host(self, host_id: HostId) -> Host:
        """Return the host with the given id."""
        try:
            return self._hosts[host_id]
        except KeyError as exc:
            raise UnknownHostError(f"unknown host {host_id}") from exc

    def hosts(self) -> Iterator[Host]:
        """Iterate over all registered hosts."""
        return iter(self._hosts.values())

    @property
    def host_count(self) -> int:
        """The paper's ``H``."""
        return len(self._hosts)

    def __contains__(self, host_id: HostId) -> bool:
        return host_id in self._hosts

    # ------------------------------------------------------------------ #
    # storage helpers
    # ------------------------------------------------------------------ #
    def store(self, host_id: HostId, item: Any) -> Address:
        """Store ``item`` on host ``host_id`` and return its address."""
        return self.host(host_id).store(item)

    def load(self, address: Address) -> Any:
        """Dereference ``address`` *without* charging a message.

        Structures must only call this for local dereferences, or after
        having charged the hop via :meth:`send` /
        :class:`~repro.net.rpc.Traversal`.
        """
        self._check_alive(address.host)
        return self.host(address.host).load(address)

    def free(self, address: Address) -> Any:
        """Remove the item stored at ``address`` and return it."""
        return self.host(address.host).free(address)

    def replace(self, address: Address, item: Any) -> None:
        """Overwrite the item stored at ``address``."""
        self.host(address.host).replace(address, item)

    # ------------------------------------------------------------------ #
    # messaging
    # ------------------------------------------------------------------ #
    def send(
        self,
        src: HostId,
        dst: HostId,
        kind: MessageKind = MessageKind.QUERY,
        payload: Any = None,
    ) -> Message | None:
        """Record one message from ``src`` to ``dst``.

        Sending a message to oneself is free (returns ``None``) — the
        paper only charges for *inter-host* communication.
        """
        if src not in self._hosts:
            raise UnknownHostError(f"unknown source host {src}")
        if dst not in self._hosts:
            raise UnknownHostError(f"unknown destination host {dst}")
        self._check_alive(dst)
        if src == dst:
            return None
        message = self._log.record(src=src, dst=dst, kind=kind, payload=payload)
        for stats in self._measure_stack:
            stats.messages += 1
            stats.by_kind[kind] = stats.by_kind.get(kind, 0) + 1
            stats.hosts_touched.add(src)
            stats.hosts_touched.add(dst)
        return message

    @property
    def message_log(self) -> MessageLog:
        """The global message log (lifetime counters)."""
        return self._log

    @property
    def total_messages(self) -> int:
        """Total messages ever sent on this network."""
        return len(self._log)

    @contextmanager
    def measure(self) -> Iterator[OperationStats]:
        """Measure the messages sent while the ``with`` body runs.

        Measurements nest: an outer harness can measure a whole workload
        while individual operations are measured inside it.
        """
        stats = OperationStats()
        self._measure_stack.append(stats)
        try:
            yield stats
        finally:
            self._measure_stack.pop()

    # ------------------------------------------------------------------ #
    # failure injection hooks (extension; the paper assumes no failures)
    # ------------------------------------------------------------------ #
    def fail_host(self, host_id: HostId) -> None:
        """Mark a host as failed; any traffic to it raises :class:`HostFailedError`."""
        self.host(host_id).failed = True
        self._failed_hosts.add(host_id)

    def recover_host(self, host_id: HostId) -> None:
        """Bring a failed host back."""
        self.host(host_id).failed = False
        self._failed_hosts.discard(host_id)

    @property
    def failed_hosts(self) -> set[HostId]:
        return set(self._failed_hosts)

    def _check_alive(self, host_id: HostId) -> None:
        if host_id in self._failed_hosts:
            raise HostFailedError(f"host {host_id} has failed")

    # ------------------------------------------------------------------ #
    # measurement summaries
    # ------------------------------------------------------------------ #
    def memory_profile(self) -> dict[HostId, int]:
        """Items stored per host — the measured per-host memory ``M``."""
        return {host.host_id: host.memory_used for host in self.hosts()}

    def max_memory_used(self) -> int:
        """Largest number of items stored on any single host."""
        profile = self.memory_profile()
        return max(profile.values()) if profile else 0

    def reset_counters(self) -> None:
        """Clear the message log and per-host reference counters.

        Structures call this after construction so that benchmarks measure
        only query/update traffic, matching the paper's per-operation cost
        definitions.
        """
        self._log.clear()
        for host in self.hosts():
            host.reset_reference_counts()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Network(hosts={self.host_count}, messages={self.total_messages})"
