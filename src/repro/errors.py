"""Exception hierarchy for the skip-webs reproduction.

Every exception raised intentionally by this package derives from
:class:`ReproError`, so callers can catch a single base class.  The
sub-classes mirror the main subsystems: the network simulator, the data
structures themselves, and the query/update protocols.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class UnknownHostError(ReproError):
    """A message was addressed to a host id that is not registered."""


class HostMemoryExceeded(ReproError):
    """A host was asked to store more items than its memory budget ``M`` allows."""


class AddressError(ReproError):
    """An address could not be resolved (bad slot, wrong host, stale pointer)."""


class HostFailedError(ReproError):
    """An operation touched a host that has been failed by the failure injector."""


class FaultInjectedError(ReproError):
    """A delivery was dropped by an installed :class:`repro.net.faults.FaultPlan`.

    Distinct from :class:`HostFailedError` (the destination is gone and a
    resend cannot help): an injected drop is *transient* by construction,
    so the executors retry the operation with deterministic backoff
    before giving up.
    """


class OperationTimedOutError(ReproError):
    """An operation exceeded its per-operation round budget.

    Raised internally by the batch executor when ``round_budget`` is set
    and an in-flight operation has spanned that many delivery rounds; the
    operation's handle reports the ``timed_out`` status instead of the
    batch crashing.
    """


class StructureError(ReproError):
    """A data structure invariant was violated or an input was malformed."""


class QueryError(ReproError):
    """A query could not be answered (empty structure, key outside universe, ...)."""


class UnsupportedOperationError(ReproError):
    """The structure cannot support the requested operation at all.

    Distinct from :class:`QueryError` (which signals transient or
    input-specific trouble and is retried by the batch executor): an
    unsupported operation — e.g. a range query on a hash-based DHT —
    will never succeed, so the executor records it without retrying.
    """


class UpdateError(ReproError):
    """An insertion or deletion could not be applied."""


class ChurnError(ReproError):
    """A membership change (join, leave, crash, repair) could not proceed."""


class StorageError(ReproError):
    """Durable state could not be written, read, or replayed.

    Covers the whole :mod:`repro.storage` failure surface: log corruption
    (a checksum-mismatched record, an undecodable line), a torn tail left
    by a crash mid-append, snapshot/log format-version skew, and replay
    divergence (the journal and the regenerated state disagree).  A
    corrupted log is never loaded partially and silently: the error
    carries how much of it *is* intact.

    Attributes
    ----------
    recoverable_records:
        Number of leading log records that verified cleanly before the
        failure (``None`` when the error is not about log contents).
        Everything up to this prefix can be recovered; see
        ``StorageBackend.trim_torn_tail``.
    torn_tail:
        ``True`` when only the *final* record is damaged — the signature
        a crash mid-append leaves on an append-only log, and the one
        corruption recovery may repair by trimming.  Damage anywhere
        earlier is real corruption and is never trimmed.
    """

    def __init__(
        self,
        message: str,
        *,
        recoverable_records: int | None = None,
        torn_tail: bool = False,
    ) -> None:
        super().__init__(message)
        self.recoverable_records = recoverable_records
        self.torn_tail = torn_tail
