"""Package version, kept in a tiny module so it is importable without side effects."""

__version__ = "1.0.0"
