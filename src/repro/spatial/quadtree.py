"""Compressed quadtrees and octrees (§3.1 of the paper).

A quadtree (2-d) or octree (d ≥ 3) is defined by a set of points and a
bounding hypercube: the root cell is the bounding cube, every cell with
more than one point is subdivided into ``2^d`` half-side child cells, and
chains of cells with only one non-empty child are *compressed* into
single edges, so the tree has ``O(n)`` nodes even though its depth can be
``Θ(n)`` in the worst case (a property the paper leans on: the skip-web
still answers point location in ``O(log n)`` messages).

The tree built here is the classic compressed quadtree:

* every *leaf* stores exactly one input point,
* every *internal* cell is the smallest dyadic cell that still contains
  all the points of its subtree and splits them between at least two
  children,
* the root is always the caller-supplied bounding cube so that the trees
  built for different skip-web levels share a common cell hierarchy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.errors import StructureError
from repro.spatial.geometry import HyperCube, Point, as_point, point_distance


@dataclass
class QuadtreeCell:
    """One cell (node) of a compressed quadtree."""

    cube: HyperCube
    points: tuple[Point, ...]
    children: list["QuadtreeCell"] = field(default_factory=list)
    parent: "QuadtreeCell | None" = None

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def point(self) -> Point | None:
        """The stored point when this cell is a leaf."""
        return self.points[0] if self.is_leaf and self.points else None

    @property
    def depth(self) -> int:
        """Number of ancestors (root has depth 0)."""
        depth = 0
        node = self
        while node.parent is not None:
            depth += 1
            node = node.parent
        return depth

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QuadtreeCell(side={self.cube.side}, points={len(self.points)}, "
            f"children={len(self.children)})"
        )


class CompressedQuadtree:
    """A compressed quadtree / octree over a finite point set.

    Parameters
    ----------
    points:
        The input points (duplicates are collapsed).
    bounding_cube:
        The root cell.  All points must lie inside it (the far faces are
        treated as closed so points on the boundary are accepted).
    """

    def __init__(self, points: Sequence[Point], bounding_cube: HyperCube) -> None:
        normalized = []
        seen: set[Point] = set()
        for point in points:
            candidate = as_point(point)
            if candidate not in seen:
                seen.add(candidate)
                normalized.append(candidate)
        if not normalized:
            raise StructureError("quadtree requires at least one point")
        for point in normalized:
            if not bounding_cube.contains_closed(point):
                raise StructureError(
                    f"point {point} lies outside the bounding cube {bounding_cube}"
                )
        self.bounding_cube = bounding_cube
        self.dimension = bounding_cube.dimension
        self._points = tuple(normalized)
        self.root = self._build(bounding_cube, list(normalized), is_root=True)
        self.root.parent = None

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def _build(
        self, cube: HyperCube, points: list[Point], is_root: bool = False
    ) -> QuadtreeCell:
        if len(points) == 1:
            return QuadtreeCell(cube=cube, points=tuple(points))
        # Compress: shrink to the smallest dyadic cell that still splits
        # the points, except at the root whose cell is fixed.
        cell_cube = cube if is_root else cube.smallest_enclosing_cell(points)
        if is_root:
            # The root keeps the bounding cube, but if all points fall into
            # a single child we hang the compressed subtree directly below.
            split_cube = cube.smallest_enclosing_cell(points)
        else:
            split_cube = cell_cube
        cell = QuadtreeCell(cube=cell_cube, points=tuple(points))
        if is_root and split_cube != cell_cube:
            child = self._build(split_cube, points)
            child.parent = cell
            cell.children = [child]
            return cell
        groups: dict[int, list[Point]] = {}
        for point in points:
            groups.setdefault(self._child_index(split_cube, point), []).append(point)
        for index in sorted(groups):
            child_cube = split_cube.child(index)
            child = self._build(child_cube, groups[index])
            child.parent = cell
            cell.children.append(child)
        return cell

    @staticmethod
    def _child_index(cube: HyperCube, point: Point) -> int:
        index = cube.child_index(point)
        # Points on the far (closed) faces of the bounding cube would index
        # a child outside the cube; clamp them into the last child.
        child = cube.child(index)
        if not child.contains_closed(point):  # pragma: no cover - defensive
            raise StructureError(f"point {point} escaped its child cell")
        return index

    # ------------------------------------------------------------------ #
    # traversal
    # ------------------------------------------------------------------ #
    @property
    def points(self) -> tuple[Point, ...]:
        return self._points

    def cells(self) -> Iterator[QuadtreeCell]:
        """Pre-order iteration over all cells."""
        stack = [self.root]
        while stack:
            cell = stack.pop()
            yield cell
            stack.extend(reversed(cell.children))

    def cell_count(self) -> int:
        return sum(1 for _ in self.cells())

    def depth(self) -> int:
        """Maximum depth of any cell."""
        best = 0
        stack = [(self.root, 0)]
        while stack:
            cell, depth = stack.pop()
            best = max(best, depth)
            stack.extend((child, depth + 1) for child in cell.children)
        return best

    def locate(self, point: Point) -> QuadtreeCell:
        """The smallest cell whose cube contains ``point``.

        Points outside the bounding cube locate to the root (the caller
        can detect this by checking containment).
        """
        point = as_point(point)
        current = self.root
        if not current.cube.contains_closed(point):
            return current
        while True:
            advanced = False
            for child in current.children:
                if child.cube.contains_closed(point):
                    current = child
                    advanced = True
                    break
            if not advanced:
                return current

    def cells_intersecting(self, cube: HyperCube) -> list[QuadtreeCell]:
        """Every cell whose cube intersects ``cube`` (pruned tree walk)."""
        result: list[QuadtreeCell] = []
        stack = [self.root]
        while stack:
            cell = stack.pop()
            if not cell.cube.intersects(cube):
                continue
            result.append(cell)
            stack.extend(cell.children)
        return result

    def points_in_cube(self, cube: HyperCube) -> list[Point]:
        """All stored points inside ``cube`` (closed), via a pruned walk."""
        result: list[Point] = []
        stack = [self.root]
        while stack:
            cell = stack.pop()
            if not cell.cube.intersects(cube):
                continue
            if cell.is_leaf:
                if cell.point is not None and cube.contains_closed(cell.point):
                    result.append(cell.point)
                continue
            stack.extend(cell.children)
        return result

    def nearest_point(self, query: Point) -> Point:
        """Exact nearest neighbour by pruned best-first search (reference)."""
        query = as_point(query)
        best: Point | None = None
        best_distance = float("inf")
        stack = [self.root]
        while stack:
            cell = stack.pop()
            if cell.cube.distance_to_point(query) > best_distance:
                continue
            if cell.is_leaf:
                distance = point_distance(cell.point, query)
                if distance < best_distance:
                    best, best_distance = cell.point, distance
                continue
            stack.extend(
                sorted(
                    cell.children,
                    key=lambda child: child.cube.distance_to_point(query),
                    reverse=True,
                )
            )
        if best is None:  # pragma: no cover - ground set is never empty
            raise StructureError("nearest_point on an empty quadtree")
        return best

    def validate(self) -> None:
        """Check compressed-quadtree invariants (used by tests)."""
        for cell in self.cells():
            if cell.is_leaf:
                if len(cell.points) != 1:
                    raise StructureError("leaf cell must store exactly one point")
                if not cell.cube.contains_closed(cell.points[0]):
                    raise StructureError("leaf point escaped its cell")
                continue
            if len(cell.children) == 1 and cell.parent is not None:
                raise StructureError("non-root cell with a single child is not compressed")
            child_points = sorted(
                point for child in cell.children for point in child.points
            )
            if child_points != sorted(cell.points):
                raise StructureError("children do not partition the cell's points")
            for child in cell.children:
                if not cell.cube.contains_cube(child.cube):
                    raise StructureError("child cell escapes its parent")
