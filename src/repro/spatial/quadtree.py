"""Compressed quadtrees and octrees (§3.1 of the paper).

A quadtree (2-d) or octree (d ≥ 3) is defined by a set of points and a
bounding hypercube: the root cell is the bounding cube, every cell with
more than one point is subdivided into ``2^d`` half-side child cells, and
chains of cells with only one non-empty child are *compressed* into
single edges, so the tree has ``O(n)`` nodes even though its depth can be
``Θ(n)`` in the worst case (a property the paper leans on: the skip-web
still answers point location in ``O(log n)`` messages).

The tree built here is the classic compressed quadtree:

* every *leaf* stores exactly one input point,
* every *internal* cell is the smallest dyadic cell that still contains
  all the points of its subtree and splits them between at least two
  children,
* the root is always the caller-supplied bounding cube so that the trees
  built for different skip-web levels share a common cell hierarchy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.errors import StructureError
from repro.spatial.geometry import HyperCube, Point, as_point, point_distance


@dataclass
class QuadtreeCell:
    """One cell (node) of a compressed quadtree."""

    cube: HyperCube
    points: tuple[Point, ...]
    children: list["QuadtreeCell"] = field(default_factory=list)
    parent: "QuadtreeCell | None" = None
    # Unit-collection caches (see skip_quadtree.QuadtreeStructure):
    # ``ukeys`` is ``(cube, node_key, link_key)``, valid while the cube
    # object is unchanged; ``nunit`` / ``lunit`` are the last node / link
    # RangeUnits built for this cell, revalidated by identity checks.
    ukeys: "tuple | None" = field(default=None, repr=False, compare=False)
    nunit: "object | None" = field(default=None, repr=False, compare=False)
    lunit: "object | None" = field(default=None, repr=False, compare=False)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def point(self) -> Point | None:
        """The stored point when this cell is a leaf."""
        return self.points[0] if self.is_leaf and self.points else None

    @property
    def depth(self) -> int:
        """Number of ancestors (root has depth 0)."""
        depth = 0
        node = self
        while node.parent is not None:
            depth += 1
            node = node.parent
        return depth

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QuadtreeCell(side={self.cube.side}, points={len(self.points)}, "
            f"children={len(self.children)})"
        )


class CompressedQuadtree:
    """A compressed quadtree / octree over a finite point set.

    Parameters
    ----------
    points:
        The input points (duplicates are collapsed).
    bounding_cube:
        The root cell.  All points must lie inside it (the far faces are
        treated as closed so points on the boundary are accepted).
    """

    def __init__(self, points: Sequence[Point], bounding_cube: HyperCube) -> None:
        normalized = []
        seen: set[Point] = set()
        for point in points:
            candidate = as_point(point)
            if candidate not in seen:
                seen.add(candidate)
                normalized.append(candidate)
        if not normalized:
            raise StructureError("quadtree requires at least one point")
        for point in normalized:
            if not bounding_cube.contains_closed(point):
                raise StructureError(
                    f"point {point} lies outside the bounding cube {bounding_cube}"
                )
        self.bounding_cube = bounding_cube
        self.dimension = bounding_cube.dimension
        self._points = tuple(normalized)
        self._point_set = seen
        self.root = self._build(bounding_cube, list(normalized), is_root=True)
        self.root.parent = None

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def _build(
        self, cube: HyperCube, points: list[Point], is_root: bool = False
    ) -> QuadtreeCell:
        if len(points) == 1:
            return QuadtreeCell(cube=cube, points=tuple(points))
        # Compress: shrink to the smallest dyadic cell that still splits
        # the points, except at the root whose cell is fixed.
        cell_cube = cube if is_root else cube.smallest_enclosing_cell(points)
        if is_root:
            # The root keeps the bounding cube, but if all points fall into
            # a single child we hang the compressed subtree directly below.
            split_cube = cube.smallest_enclosing_cell(points)
        else:
            split_cube = cell_cube
        cell = QuadtreeCell(cube=cell_cube, points=tuple(points))
        if is_root and split_cube != cell_cube:
            child = self._build(split_cube, points)
            child.parent = cell
            cell.children = [child]
            return cell
        groups: dict[int, list[Point]] = {}
        for point in points:
            groups.setdefault(self._child_index(split_cube, point), []).append(point)
        for index in sorted(groups):
            child_cube = split_cube.child(index)
            child = self._build(child_cube, groups[index])
            child.parent = cell
            cell.children.append(child)
        return cell

    @staticmethod
    def _child_index(cube: HyperCube, point: Point) -> int:
        index = cube.child_index(point)
        # Points on the far (closed) faces of the bounding cube would index
        # a child outside the cube; clamp them into the last child.
        child = cube.child(index)
        if not child.contains_closed(point):  # pragma: no cover - defensive
            raise StructureError(f"point {point} escaped its child cell")
        return index

    # ------------------------------------------------------------------ #
    # incremental insertion (canonical: identical to a full rebuild)
    # ------------------------------------------------------------------ #
    def insert_point(self, point: Point) -> None:
        """Add one point in place, producing exactly the rebuilt tree.

        Compressed quadtrees are canonical in their point set (given the
        fixed bounding cube), so only the O(depth) path around the
        insertion position needs touching: ancestors absorb the point
        into their ``points`` tuples, and at the cell where compression
        changes, the old subtree is re-hung unmodified under a new split
        cell.  Anywhere the local reasoning cannot apply (degenerate
        far-face compression), the affected subtree is rebuilt through
        :meth:`_build`, which is canonical by definition.
        """
        p = as_point(point)
        if p in self._point_set:
            raise StructureError(f"point {p} already stored")
        if not self.bounding_cube.contains_closed(p):
            raise StructureError(
                f"point {p} lies outside the bounding cube {self.bounding_cube}"
            )
        self._points = self._points + (p,)
        self._point_set.add(p)
        root = self.root
        if root.is_leaf:
            # n was 1: the root is the leaf; rebuild the two-point tree.
            self.root = self._build(self.bounding_cube, list(self._points), is_root=True)
            self.root.parent = None
            return
        root.points = root.points + (p,)
        if len(root.children) == 1:
            # Compressed root: the single child carries the real split cell.
            # A point strictly inside the old split cell cannot move it
            # (the enclosing-cell walk is unchanged), so the full
            # recomputation only runs when the point falls outside.
            child = root.children[0]
            old_split = child.cube
            new_split = (
                old_split
                if old_split.contains(p)
                else self.bounding_cube.smallest_enclosing_cell(list(root.points))
            )
            if new_split == old_split:
                self._insert_into(child, child.cube, p)
            elif new_split == self.bounding_cube:
                # The split cell grew all the way up: the root now splits.
                root.children = []
                self._attach(root, self.bounding_cube, child, p, list(root.points))
            else:
                carrier = QuadtreeCell(cube=new_split, points=tuple(root.points))
                carrier.parent = root
                root.children = [carrier]
                self._attach(carrier, new_split, child, p, list(root.points))
            return
        self._insert_into_children(root, self.bounding_cube, p)

    def _insert_into(self, cell: QuadtreeCell, slot_cube: HyperCube, p: Point) -> None:
        """Insert ``p`` into the subtree that ``_build(slot_cube, ...)`` made."""
        if cell.is_leaf:
            # The leaf keeps its slot cube; splitting it forms the smallest
            # cell separating the old point from the new one.
            merged = list(cell.points) + [p]
            new_cube = slot_cube.smallest_enclosing_cell(merged)
            old_point = cell.points[0]
            i_old = self._child_index(new_cube, old_point)
            i_new = self._child_index(new_cube, p)
            if i_old == i_new:
                self._replace_subtree(cell, self._build(slot_cube, merged))
                return
            cell.cube = new_cube
            cell.points = tuple(merged)
            first = QuadtreeCell(cube=new_cube.child(i_old), points=(old_point,), parent=cell)
            second = QuadtreeCell(cube=new_cube.child(i_new), points=(p,), parent=cell)
            cell.children = [first, second] if i_old < i_new else [second, first]
            return
        # A point strictly inside the cell's (shrunk) cube leaves the
        # enclosing-cell walk unchanged, so the cube survives as is; only
        # an outside point forces the O(points) recomputation.
        new_cube = (
            cell.cube
            if cell.cube.contains(p)
            else slot_cube.smallest_enclosing_cell(list(cell.points) + [p])
        )
        if new_cube == cell.cube:
            cell.points = cell.points + (p,)
            self._insert_into_children(cell, cell.cube, p)
            return
        # Compression boundary moved: hang the untouched old subtree and a
        # fresh leaf under a new split cell in the old slot.
        carrier = QuadtreeCell(cube=new_cube, points=cell.points + (p,), parent=cell.parent)
        self._replace_subtree(cell, carrier, reparent=False)
        self._attach(carrier, new_cube, cell, p, list(carrier.points))

    def _insert_into_children(
        self, cell: QuadtreeCell, split_cube: HyperCube, p: Point
    ) -> None:
        """Route ``p`` to (or create) the child slot of an uncompressed cell."""
        index = self._child_index(split_cube, p)
        for child in cell.children:
            if self._child_index(split_cube, child.points[0]) == index:
                self._insert_into(child, split_cube.child(index), p)
                return
        leaf = QuadtreeCell(cube=split_cube.child(index), points=(p,), parent=cell)
        position = len(cell.children)
        for slot, child in enumerate(cell.children):
            if self._child_index(split_cube, child.points[0]) > index:
                position = slot
                break
        cell.children.insert(position, leaf)

    def _attach(
        self,
        carrier: QuadtreeCell,
        split_cube: HyperCube,
        old_cell: QuadtreeCell,
        p: Point,
        all_points: list[Point],
    ) -> None:
        """Give ``carrier`` the old subtree plus a leaf for ``p`` as children."""
        i_old = self._child_index(split_cube, old_cell.points[0])
        i_new = self._child_index(split_cube, p)
        if i_old == i_new:
            # Degenerate compression stop (far-face guard): delegate to the
            # canonical builder for the whole carrier slot.
            rebuilt = self._build(split_cube, all_points)
            carrier.cube = rebuilt.cube
            carrier.points = rebuilt.points
            carrier.children = rebuilt.children
            for child in carrier.children:
                child.parent = carrier
            return
        leaf = QuadtreeCell(cube=split_cube.child(i_new), points=(p,), parent=carrier)
        old_cell.parent = carrier
        carrier.children = [old_cell, leaf] if i_old < i_new else [leaf, old_cell]

    def _replace_subtree(
        self, old: QuadtreeCell, new: QuadtreeCell, reparent: bool = True
    ) -> None:
        """Swap ``old`` for ``new`` in the parent's child list (same position)."""
        parent = old.parent
        if parent is None:  # pragma: no cover - the root is never replaced here
            raise StructureError("cannot replace the root cell")
        if reparent:
            new.parent = parent
        parent.children[parent.children.index(old)] = new

    # ------------------------------------------------------------------ #
    # traversal
    # ------------------------------------------------------------------ #
    @property
    def points(self) -> tuple[Point, ...]:
        return self._points

    def cells(self) -> Iterator[QuadtreeCell]:
        """Pre-order iteration over all cells."""
        stack = [self.root]
        while stack:
            cell = stack.pop()
            yield cell
            stack.extend(reversed(cell.children))

    def cell_count(self) -> int:
        return sum(1 for _ in self.cells())

    def depth(self) -> int:
        """Maximum depth of any cell."""
        best = 0
        stack = [(self.root, 0)]
        while stack:
            cell, depth = stack.pop()
            best = max(best, depth)
            stack.extend((child, depth + 1) for child in cell.children)
        return best

    def locate(self, point: Point) -> QuadtreeCell:
        """The smallest cell whose cube contains ``point``.

        Points outside the bounding cube locate to the root (the caller
        can detect this by checking containment).
        """
        point = as_point(point)
        current = self.root
        if not current.cube.contains_closed(point):
            return current
        while True:
            advanced = False
            for child in current.children:
                if child.cube.contains_closed(point):
                    current = child
                    advanced = True
                    break
            if not advanced:
                return current

    def cells_intersecting(self, cube: HyperCube) -> list[QuadtreeCell]:
        """Every cell whose cube intersects ``cube`` (pruned tree walk)."""
        result: list[QuadtreeCell] = []
        stack = [self.root]
        while stack:
            cell = stack.pop()
            if not cell.cube.intersects(cube):
                continue
            result.append(cell)
            stack.extend(cell.children)
        return result

    def points_in_cube(self, cube: HyperCube) -> list[Point]:
        """All stored points inside ``cube`` (closed), via a pruned walk."""
        result: list[Point] = []
        stack = [self.root]
        while stack:
            cell = stack.pop()
            if not cell.cube.intersects(cube):
                continue
            if cell.is_leaf:
                if cell.point is not None and cube.contains_closed(cell.point):
                    result.append(cell.point)
                continue
            stack.extend(cell.children)
        return result

    def nearest_point(self, query: Point) -> Point:
        """Exact nearest neighbour by pruned best-first search (reference)."""
        query = as_point(query)
        best: Point | None = None
        best_distance = float("inf")
        stack = [self.root]
        while stack:
            cell = stack.pop()
            if cell.cube.distance_to_point(query) > best_distance:
                continue
            if cell.is_leaf:
                distance = point_distance(cell.point, query)
                if distance < best_distance:
                    best, best_distance = cell.point, distance
                continue
            stack.extend(
                sorted(
                    cell.children,
                    key=lambda child: child.cube.distance_to_point(query),
                    reverse=True,
                )
            )
        if best is None:  # pragma: no cover - ground set is never empty
            raise StructureError("nearest_point on an empty quadtree")
        return best

    def validate(self) -> None:
        """Check compressed-quadtree invariants (used by tests)."""
        for cell in self.cells():
            if cell.is_leaf:
                if len(cell.points) != 1:
                    raise StructureError("leaf cell must store exactly one point")
                if not cell.cube.contains_closed(cell.points[0]):
                    raise StructureError("leaf point escaped its cell")
                continue
            if len(cell.children) == 1 and cell.parent is not None:
                raise StructureError("non-root cell with a single child is not compressed")
            child_points = sorted(
                point for child in cell.children for point in child.points
            )
            if child_points != sorted(cell.points):
                raise StructureError("children do not partition the cell's points")
            for child in cell.children:
                if not cell.cube.contains_cube(child.cube):
                    raise StructureError("child cell escapes its parent")
