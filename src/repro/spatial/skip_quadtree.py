"""Skip-webs over compressed quadtrees and octrees (§3.1, Lemma 3).

:class:`QuadtreeStructure` adapts :class:`~repro.spatial.quadtree.CompressedQuadtree`
to the range-determined link structure interface: node ranges are the
cells' hypercubes and link ranges are the child cells' hypercubes, as
prescribed by the paper.  Lemma 3 (the set-halving lemma for quadtrees)
is verified empirically by ``benchmarks/bench_fig3_quadtree_halving.py``.

:class:`SkipQuadtreeWeb` is the distributed structure: point location in
the subdivision defined by the quadtree cells using ``O(log n)`` expected
messages even when the underlying tree has depth ``O(n)`` — the
distributed analogue of the skip quadtree of Eppstein, Goodrich and Sun
that the paper cites.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Mapping, Sequence

from repro.core.link_structure import RangeDeterminedLinkStructure, RangeUnit, UnitKind
from repro.core.query import QueryResult
from repro.core.ranges import Range
from repro.core.skipweb import SkipWeb, SkipWebConfig, SkipWebStructureAdapter
from repro.core.update import UpdateResult
from repro.errors import QueryError, StructureError
from repro.net.congestion import CongestionReport
from repro.net.naming import HostId
from repro.net.network import Network
from repro.core.ranges import ranges_conflict
from repro.spatial.geometry import (
    BoundingBox,
    Box,
    HyperCube,
    Point,
    as_point,
    point_distance,
)
from repro.spatial.quadtree import CompressedQuadtree, QuadtreeCell


@dataclass(frozen=True)
class PointLocationAnswer:
    """Answer to a point-location query in the quadtree subdivision."""

    query: Point
    cell: HyperCube
    cell_points: tuple[Point, ...]
    nearest_in_cell: Point | None

    @property
    def exact(self) -> bool:
        """Whether the query coincides with a stored point of the located cell."""
        return self.query in self.cell_points


def _cube_key(cube: HyperCube) -> tuple:
    return (cube.lower, cube.side)


def _node_key(cube: HyperCube) -> Hashable:
    return ("qnode", _cube_key(cube))


def _link_key(child_cube: HyperCube) -> Hashable:
    return ("qlink", _cube_key(child_cube))


class QuadtreeStructure(RangeDeterminedLinkStructure):
    """A compressed quadtree viewed as a range-determined link structure.

    Construction parameters (shared by every level of a skip-web):

    ``bounding_cube``
        The root cell.  Must be supplied (directly or via ``points`` and
        :meth:`BoundingBox.around`) so that every level's tree uses the
        same cell hierarchy.
    """

    name = "compressed-quadtree"

    def __init__(
        self,
        points: Sequence[Point],
        bounding_cube: HyperCube,
        _tree: CompressedQuadtree | None = None,
    ) -> None:
        self._bounding_cube = bounding_cube
        self.tree = CompressedQuadtree(points, bounding_cube) if _tree is None else _tree
        self._units: list[RangeUnit] = []
        self._units_by_key: dict[Hashable, RangeUnit] = {}
        self._adjacency: dict[Hashable, list[Hashable]] = {}
        self._cell_by_key: dict[Hashable, QuadtreeCell] = {}
        self._collect_units()

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(cls, items: Sequence[Any], **params: Any) -> "QuadtreeStructure":
        bounding_cube = params.get("bounding_cube")
        if bounding_cube is None:
            raise StructureError(
                "QuadtreeStructure.build requires a 'bounding_cube' parameter"
            )
        return cls([as_point(item) for item in items], bounding_cube)

    def build_params(self) -> dict[str, Any]:
        return {"bounding_cube": self._bounding_cube}

    def with_item(self, item: Any) -> "QuadtreeStructure":
        """``D(S ∪ {x})`` via an in-place canonical tree insert.

        Compressed quadtrees are canonical in their point set (the
        bounding cube is fixed across skip-web levels), so
        :meth:`repro.spatial.quadtree.CompressedQuadtree.insert_point`
        yields exactly the tree a rebuild over the enlarged set would.
        This instance keeps its unit snapshot for the §4 diff (its lists
        and indexes below are never mutated); the returned structure
        shares the mutated tree and re-collects its units from it.
        """
        self.tree.insert_point(as_point(item))
        return QuadtreeStructure((), self._bounding_cube, _tree=self.tree)

    def _collect_units(self) -> None:
        """Derive units, indexes and adjacency from the tree, in tree order.

        Unit keys and the units themselves are cached *on the cells*
        (``QuadtreeCell.ukeys`` / ``nunit`` / ``lunit``) so that repeated
        collections over a shared, incrementally-mutated tree (the
        :meth:`with_item` path) rebuild only what actually changed: a
        cached key survives while the cell's cube object is unchanged,
        and a cached unit is reused only when its range and payload
        objects *are* the current tree's objects, which makes the reused
        unit field-for-field equal to the one a fresh build would make.
        """
        cells = list(self.tree.cells())
        units = self._units
        units_append = units.append
        units_by_key = self._units_by_key
        adjacency = self._adjacency
        cell_by_key = self._cell_by_key
        for cell in cells:
            cube = cell.cube
            cached = cell.ukeys
            if cached is None or cached[0] is not cube:
                base = (cube.lower, cube.side)
                cached = cell.ukeys = (cube, ("qnode", base), ("qlink", base))
            node_key = cached[1]
            # A representative stored point, used by owner blocking to
            # place the record on the host that owns one of the cell's
            # points (the analogue of a skip graph tower's home host).
            points = cell.points
            payload = points[0] if points else None
            unit = cell.nunit
            if unit is None or unit.range is not cube or unit.payload is not payload:
                unit = cell.nunit = RangeUnit(
                    key=node_key, kind=UnitKind.NODE, range=cube, payload=payload
                )
            units_append(unit)
            units_by_key[node_key] = unit
            adjacency[node_key] = []
            cell_by_key[node_key] = cell
        for cell in cells:
            children = cell.children
            if not children:
                continue
            parent_key = cell.ukeys[1]
            points = cell.points
            parent_payload = points[0] if points else None
            parent_adjacency = adjacency[parent_key]
            for child in children:
                child_cached = child.ukeys  # filled by the node pass above
                child_cube = child_cached[0]
                link_key = child_cached[2]
                child_points = child.points
                child_payload = child_points[0] if child_points else None
                unit = child.lunit
                if (
                    unit is None
                    or unit.range is not child_cube
                    or unit.payload[0] is not child_payload
                    or unit.payload[1] is not parent_payload
                ):
                    unit = child.lunit = RangeUnit(
                        key=link_key,
                        kind=UnitKind.LINK,
                        range=child_cube,
                        payload=(child_payload, parent_payload),
                    )
                units_append(unit)
                units_by_key[link_key] = unit
                cell_by_key[link_key] = child
                child_key = child_cached[1]
                adjacency[link_key] = [parent_key, child_key]
                parent_adjacency.append(link_key)
                adjacency[child_key].append(link_key)
        if len(units_by_key) != len(units):
            raise StructureError("duplicate quadtree unit key in collection")

    # ------------------------------------------------------------------ #
    # RangeDeterminedLinkStructure interface
    # ------------------------------------------------------------------ #
    @property
    def items(self) -> Sequence[Point]:
        return list(self.tree.points)

    def units(self) -> list[RangeUnit]:
        return list(self._units)

    def unit(self, key: Hashable) -> RangeUnit:
        try:
            return self._units_by_key[key]
        except KeyError as exc:
            raise StructureError(f"quadtree: no unit with key {key!r}") from exc

    def unit_map(self) -> Mapping[Hashable, RangeUnit]:
        return self._units_by_key

    def keys(self) -> set[Hashable]:
        return set(self._units_by_key)

    def neighbors(self, key: Hashable) -> list[RangeUnit]:
        try:
            neighbor_keys = self._adjacency[key]
        except KeyError as exc:
            raise StructureError(f"quadtree: no unit with key {key!r}") from exc
        return [self._units_by_key[neighbor] for neighbor in neighbor_keys]

    def overlapping(self, query_range: Range) -> list[RangeUnit]:
        """Units whose cell intersects ``query_range`` — a pruned tree walk.

        Because quadtree cells are dyadic, intersection means containment
        one way or the other, so this set always includes the whole
        ancestor chain of the query cube.
        """
        cube = query_range if isinstance(query_range, HyperCube) else None
        if cube is None:
            return super().overlapping(query_range)
        result: list[RangeUnit] = []
        units_by_key = self._units_by_key
        for cell in self.tree.cells_intersecting(cube):
            # The unit keys cached on the cell by collection (they depend
            # only on the cell's cube, which is stable while it is live).
            cached = cell.ukeys
            if cached is None or cached[0] is not cell.cube:
                result.append(units_by_key[_node_key(cell.cube)])
                if cell.parent is not None:
                    result.append(units_by_key[_link_key(cell.cube)])
            else:
                result.append(units_by_key[cached[1]])
                if cell.parent is not None:
                    result.append(units_by_key[cached[2]])
        return result

    def conflicts(self, query_range: Range) -> list[RangeUnit]:
        """Search-relevant conflicts: the smallest cell enclosing the query cube.

        The literal overlap set of a dyadic cube contains its entire
        ancestor chain (depth can be Θ(n)), which is neither needed for
        routing nor compatible with the O(1)-per-level analysis.  A
        query descending from a sparser level only needs a pointer to the
        cell of this (denser) structure where its search would *start*:
        the smallest cell enclosing the sparser cell, exactly as in the
        skip quadtree of Eppstein, Goodrich and Sun.  ``advance`` then
        walks the expected O(1) remaining cells (Lemma 3).
        """
        cube = query_range if isinstance(query_range, HyperCube) else None
        if cube is None:
            return super().conflicts(query_range)
        # The descent test is HyperCube.contains_cube, inlined: this is
        # the hottest loop of the update path (every rewire recomputes
        # its hyperlinks) and the call overhead dominates the arithmetic.
        lower = cube.lower
        side = cube.side
        current = self.tree.root
        descending = True
        while descending:
            descending = False
            for child in current.children:
                child_cube = child.cube
                child_lower = child_cube.lower
                padded = child_cube.side + 1e-12
                contained = True
                for child_low, low in zip(child_lower, lower):
                    if child_low > low or low + side > child_low + padded:
                        contained = False
                        break
                if contained:
                    current = child
                    descending = True
                    break
        units_by_key = self._units_by_key
        cached = current.ukeys
        if cached is None or cached[0] is not current.cube:
            result = [units_by_key[_node_key(current.cube)]]
            if current.parent is not None:
                result.append(units_by_key[_link_key(current.cube)])
        else:
            result = [units_by_key[cached[1]]]
            if current.parent is not None:
                result.append(units_by_key[cached[2]])
        return result

    # ------------------------------------------------------------------ #
    # range reporting
    # ------------------------------------------------------------------ #
    @classmethod
    def range_to_query(cls, query_range: Range) -> Any:
        """Anchor a box query's descent at the box centre.

        The centre must lie inside the bounding cube (box queries are
        windows over the stored data, so benchmark and application
        queries satisfy this by construction).
        """
        if isinstance(query_range, (Box, HyperCube)):
            return query_range.center
        return super().range_to_query(query_range)

    def report_units(self, query_range: Range) -> list[RangeUnit]:
        """Leaf cells holding a matched point, in depth-first tree order.

        A pruned walk: subtrees whose cell misses the query range are
        never entered, so the enumeration is output-sensitive local work.
        """
        result: list[RangeUnit] = []
        stack = [self.tree.root]
        while stack:
            cell = stack.pop()
            if not ranges_conflict(query_range, cell.cube):
                continue
            if cell.is_leaf:
                if any(query_range.contains(point) for point in cell.points):
                    result.append(self._units_by_key[_node_key(cell.cube)])
            else:
                stack.extend(reversed(cell.children))
        return result

    def report_values(self, query_range: Range, unit: RangeUnit) -> list[Any]:
        """The stored points of the visited cell that lie in the range."""
        cell = self._cell_by_key.get(unit.key)
        if cell is None:
            return []
        return [point for point in cell.points if query_range.contains(point)]

    def locate(self, query: Any) -> RangeUnit:
        """The smallest quadtree cell containing the query point."""
        cell = self.tree.locate(as_point(query))
        return self._units_by_key[_node_key(cell.cube)]

    @classmethod
    def select(cls, query: Any, candidates: Sequence[RangeUnit]) -> RangeUnit:
        point = as_point(query)
        containing = [
            unit
            for unit in candidates
            if isinstance(unit.range, HyperCube) and unit.range.contains_closed(point)
        ]
        if containing:
            # The smallest containing cell is the best entry point.
            return min(containing, key=lambda unit: unit.range.side)
        return min(
            candidates,
            key=lambda unit: unit.range.distance_to_point(point)
            if isinstance(unit.range, HyperCube)
            else float("inf"),
        )

    @classmethod
    def advance(
        cls,
        query: Any,
        current: RangeUnit,
        neighbors: Mapping[Hashable, Range],
    ) -> Hashable | None:
        point = as_point(query)
        current_cube = current.range
        if not isinstance(current_cube, HyperCube):  # pragma: no cover - defensive
            return None
        if current_cube.contains_closed(point):
            # Descend: a node moves onto a strictly smaller containing child
            # link; a link moves onto its child node (same cube, finer unit).
            best_key = None
            best_side = current_cube.side if current.is_node else current_cube.side + 1
            for key, rng in neighbors.items():
                if not isinstance(rng, HyperCube) or not rng.contains_closed(point):
                    continue
                descend = rng.side < current_cube.side or (
                    current.is_link and rng.side == current_cube.side and key != current.key
                )
                if descend and rng.side < best_side:
                    best_key = key
                    best_side = rng.side
            if current.is_link and best_key is None:
                # Move from the link onto its endpoint node of equal cube.
                for key, rng in neighbors.items():
                    if (
                        isinstance(rng, HyperCube)
                        and rng.contains_closed(point)
                        and rng.side == current_cube.side
                    ):
                        return key
            return best_key
        # The current cell does not contain the query: climb towards the root.
        best_key = None
        best_side = current_cube.side
        for key, rng in neighbors.items():
            if isinstance(rng, HyperCube) and rng.side > best_side:
                best_key = key
                best_side = rng.side
        return best_key

    def answer(self, query: Any, unit: RangeUnit) -> PointLocationAnswer:
        point = as_point(query)
        cell = self._cell_by_key.get(unit.key)
        if cell is None:
            raise QueryError(f"cannot decode answer for unit {unit.key!r}")
        nearest = None
        if cell.points:
            nearest = min(cell.points, key=lambda stored: point_distance(stored, point))
        return PointLocationAnswer(
            query=point,
            cell=cell.cube,
            cell_points=tuple(cell.points),
            nearest_in_cell=nearest,
        )


def descent_conflicts(
    full_tree: CompressedQuadtree, half_tree: CompressedQuadtree, query: Point
) -> int:
    """The search-relevant conflict count behind Lemma 3.

    Lemma 3 is what makes the per-level work of a quadtree skip-web O(1):
    once a query has been located in the half structure ``D(T)``, the
    number of *additional* cells of the full structure ``D(S)`` the
    search must descend through — the cells of ``D(S)`` that contain the
    query and are contained in the cell of ``D(T)`` where the search
    stopped — has constant expectation.  (The raw count of all dyadic
    cells of ``D(S)`` intersecting that cell also includes the ancestor
    chain above it, which grows with the tree depth; the descent count is
    the quantity the search actually pays for, and is what the Figure 3
    benchmark reports.)
    """
    point = as_point(query)
    half_cell = half_tree.locate(point).cube
    count = 0
    current = full_tree.root
    while True:
        if half_cell.contains_cube(current.cube):
            count += 1
        advanced = False
        for child in current.children:
            if child.cube.contains_closed(point):
                current = child
                advanced = True
                break
        if not advanced:
            return max(count, 1)


class SkipQuadtreeWeb(SkipWebStructureAdapter):
    """A distributed skip-web over a compressed quadtree / octree.

    Provides point location (and, through :mod:`repro.spatial.nearest`,
    approximate nearest-neighbour and range queries) over ``n`` points
    spread across ``n`` hosts with ``O(log n)`` expected messages.
    Implements the :class:`repro.engine.protocol.DistributedStructure`
    protocol through the adapter mixin, so it runs under the batched
    round-based executor as well.
    """

    def _coerce_query(self, query: Any) -> Point:
        return as_point(query)

    def _coerce_item(self, item: Any) -> Point:
        return as_point(item)

    def _coerce_range(self, query_range: Any) -> Any:
        if isinstance(query_range, (Box, HyperCube)):
            return query_range
        lower, upper = query_range
        return Box(lower=as_point(lower), upper=as_point(upper))

    def __init__(
        self,
        points: Sequence[Point],
        bounding_cube: HyperCube | None = None,
        network: Network | None = None,
        host_count: int | None = None,
        blocking: str = "owner",
        seed: int = 0,
        padding: float = 0.0,
    ) -> None:
        normalized = [as_point(point) for point in points]
        if bounding_cube is None:
            bounding_cube = BoundingBox.around(normalized, padding=padding).to_cube()
        self.bounding_cube = bounding_cube
        config = SkipWebConfig(
            host_count=host_count,
            blocking=blocking,
            seed=seed,
            structure_params={"bounding_cube": bounding_cube},
        )
        self.web = SkipWeb(QuadtreeStructure, normalized, network=network, config=config)

    # -- queries -------------------------------------------------------- #
    def locate(self, point: Point, origin_host: HostId | None = None) -> QueryResult:
        """Point location: the smallest quadtree cell containing ``point``."""
        return self.web.query(as_point(point), origin_host=origin_host)

    # -- updates -------------------------------------------------------- #
    def insert(self, point: Point, origin_host: HostId | None = None) -> UpdateResult:
        return self.web.insert(as_point(point), origin_host=origin_host)

    def delete(self, point: Point, origin_host: HostId | None = None) -> UpdateResult:
        return self.web.delete(as_point(point), origin_host=origin_host)

    # -- accounting ------------------------------------------------------ #
    @property
    def network(self) -> Network:
        return self.web.network

    @property
    def points(self) -> list[Point]:
        return list(self.web.items)

    @property
    def host_count(self) -> int:
        return self.web.host_count

    @property
    def level0_tree(self) -> CompressedQuadtree:
        """The full (level-0) quadtree, used by the local query helpers."""
        structure: QuadtreeStructure = self.web.level_structure(0, ())
        return structure.tree

    def max_memory_per_host(self) -> int:
        return self.web.max_memory_per_host()

    def congestion(self) -> CongestionReport:
        return self.web.congestion()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SkipQuadtreeWeb(n={len(self.points)}, d={self.bounding_cube.dimension}, "
            f"hosts={self.host_count})"
        )
