"""Approximate nearest-neighbour and range queries over quadtree skip-webs.

Section 3.1 of the paper notes that, following Eppstein, Goodrich and Sun
(the skip quadtree), point-location queries in the quadtree subdivision
can be used to answer approximate nearest-neighbour queries and
approximate range searches.  This module provides both on top of
:class:`~repro.spatial.skip_quadtree.SkipQuadtreeWeb`:

* :func:`approximate_nearest_neighbor` — locate the query's cell with the
  distributed structure, then examine the points stored in that cell, its
  parent and the parent's other children (a constant number of cells).
  The returned point is within a constant factor of the true nearest
  neighbour for well-distributed inputs, and the helper also reports the
  exact answer (computed locally) so callers and tests can measure the
  approximation ratio.
* :func:`approximate_range_query` — report the points inside a query cube
  by walking the (local) level-0 tree, plus the message cost of locating
  the cube's corners in the distributed structure, which is how a
  distributed deployment would route the query to the relevant hosts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.spatial.geometry import HyperCube, Point, as_point, point_distance
from repro.spatial.skip_quadtree import SkipQuadtreeWeb


@dataclass(frozen=True)
class ApproximateNearestAnswer:
    """Result of an approximate nearest-neighbour query."""

    query: Point
    approximate: Point
    approximate_distance: float
    exact: Point
    exact_distance: float
    messages: int

    @property
    def ratio(self) -> float:
        """Approximation ratio (1.0 means the exact nearest neighbour was found)."""
        if self.exact_distance == 0:
            return 1.0 if self.approximate_distance == 0 else float("inf")
        return self.approximate_distance / self.exact_distance


@dataclass(frozen=True)
class RangeQueryAnswer:
    """Result of a range query over a query cube."""

    cube: HyperCube
    points: tuple[Point, ...]
    messages: int


def approximate_nearest_neighbor(
    web: SkipQuadtreeWeb, query: Point
) -> ApproximateNearestAnswer:
    """Approximate nearest neighbour of ``query`` via distributed point location."""
    point = as_point(query)
    location = web.locate(point)
    tree = web.level0_tree

    # Candidate points: the located cell's subtree, its parent's subtree
    # (which includes the siblings), and — when the located cell is the
    # root — everything, degenerating to the exact answer.
    located_cell = tree.locate(point)
    candidates: set[Point] = set(located_cell.points)
    if located_cell.parent is not None:
        candidates.update(located_cell.parent.points)
    if not candidates:
        candidates.update(tree.points)

    approximate = min(candidates, key=lambda stored: point_distance(stored, point))
    exact = tree.nearest_point(point)
    return ApproximateNearestAnswer(
        query=point,
        approximate=approximate,
        approximate_distance=point_distance(approximate, point),
        exact=exact,
        exact_distance=point_distance(exact, point),
        messages=location.messages,
    )


def approximate_range_query(web: SkipQuadtreeWeb, cube: HyperCube) -> RangeQueryAnswer:
    """Points inside ``cube``; messages cover locating the cube's corners."""
    messages = 0
    dimension = cube.dimension
    for corner_index in range(1 << dimension):
        corner = tuple(
            cube.lower[axis] + (cube.side if (corner_index >> axis) & 1 else 0.0)
            for axis in range(dimension)
        )
        if web.bounding_cube.contains_closed(corner):
            messages += web.locate(corner).messages
    points = tuple(web.level0_tree.points_in_cube(cube))
    return RangeQueryAnswer(cube=cube, points=points, messages=messages)
