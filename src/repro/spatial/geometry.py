"""Points and axis-aligned hypercubes for quadtrees and octrees.

The quadtree/octree of §3.1 is defined over a bounding hypercube that is
recursively subdivided into ``2^d`` sub-cubes of half the side length.
:class:`HyperCube` implements exactly that cell geometry (dyadic cells of
the bounding cube), and doubles as the *range* of a quadtree node in the
skip-web sense: ``contains`` tests point membership and ``intersects``
tests cell overlap, which is what conflict lists are built from.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

Point = tuple[float, ...]
"""A point in ``R^d``, represented as a tuple of coordinates."""


def as_point(coordinates: Sequence[float]) -> Point:
    """Normalise a coordinate sequence to the canonical tuple representation."""
    return tuple(float(value) for value in coordinates)


def point_distance(first: Point, second: Point) -> float:
    """Euclidean distance between two points of the same dimension."""
    if len(first) != len(second):
        raise ValueError(
            f"dimension mismatch: {len(first)} vs {len(second)} coordinates"
        )
    return math.sqrt(sum((a - b) ** 2 for a, b in zip(first, second)))


@dataclass(frozen=True, slots=True)
class BoundingBox:
    """An axis-aligned box given by its lower corner and side lengths."""

    lower: Point
    sides: tuple[float, ...]

    @staticmethod
    def around(points: Iterable[Point], padding: float = 0.0) -> "BoundingBox":
        """The smallest axis-aligned *cube* enclosing ``points``, optionally padded.

        A cube (equal side lengths) is returned because quadtree cells are
        cubes; using the tight box per-axis would break the dyadic
        subdivision.
        """
        point_list = [as_point(point) for point in points]
        if not point_list:
            raise ValueError("cannot bound an empty point set")
        dimension = len(point_list[0])
        lows = [min(point[axis] for point in point_list) for axis in range(dimension)]
        highs = [max(point[axis] for point in point_list) for axis in range(dimension)]
        side = max(high - low for low, high in zip(lows, highs))
        side = (side + 2 * padding) or 1.0
        lower = tuple(low - padding for low in lows)
        return BoundingBox(lower=lower, sides=tuple(side for _ in range(dimension)))

    @property
    def dimension(self) -> int:
        return len(self.lower)

    def to_cube(self) -> "HyperCube":
        """The cube with this box's lower corner and its largest side."""
        return HyperCube(lower=self.lower, side=max(self.sides))


@dataclass(frozen=True, slots=True)
class Box:
    """A closed axis-aligned box with per-axis extents.

    The query range of an axis-aligned box-reporting query: unlike
    :class:`HyperCube` (whose sides are equal because it doubles as the
    dyadic quadtree cell), a box may be arbitrarily elongated.
    """

    lower: Point
    upper: Point

    def __post_init__(self) -> None:
        if len(self.lower) != len(self.upper):
            raise ValueError("box corners must have the same dimension")
        if any(low > high for low, high in zip(self.lower, self.upper)):
            raise ValueError(f"empty box: lower={self.lower} > upper={self.upper}")

    @property
    def dimension(self) -> int:
        return len(self.lower)

    @property
    def center(self) -> Point:
        return tuple((low + high) / 2 for low, high in zip(self.lower, self.upper))

    def contains(self, point: Point) -> bool:
        """Closed membership test."""
        if len(point) != self.dimension:
            return False
        return all(
            low <= coordinate <= high
            for low, coordinate, high in zip(self.lower, point, self.upper)
        )

    def intersects(self, other) -> bool:
        """Closed-overlap test against a cube or another box."""
        if isinstance(other, HyperCube):
            return all(
                low <= other_low + other.side and other_low <= high
                for low, high, other_low in zip(self.lower, self.upper, other.lower)
            )
        if isinstance(other, Box):
            return all(
                low <= other_high and other_low <= high
                for low, high, other_low, other_high in zip(
                    self.lower, self.upper, other.lower, other.upper
                )
            )
        return other.intersects(self)

    @staticmethod
    def around_point(point: Point, radius: float) -> "Box":
        """The Chebyshev ball of the given radius around ``point``."""
        return Box(
            lower=tuple(coordinate - radius for coordinate in point),
            upper=tuple(coordinate + radius for coordinate in point),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Box(lower={self.lower}, upper={self.upper})"


@dataclass(frozen=True, slots=True)
class HyperCube:
    """An axis-aligned hypercube ``[lower, lower + side)^d``.

    Cells are half-open so that the ``2^d`` children of a cell partition
    it exactly and every point lies in exactly one child.  ``intersects``
    treats cubes as closed, which errs on the side of counting a conflict
    — the safe direction for building conflict lists.
    """

    lower: Point
    side: float

    def __post_init__(self) -> None:
        if self.side <= 0:
            raise ValueError(f"cube side must be positive, got {self.side}")

    @property
    def dimension(self) -> int:
        return len(self.lower)

    @property
    def upper(self) -> Point:
        return tuple(low + self.side for low in self.lower)

    @property
    def center(self) -> Point:
        return tuple(low + self.side / 2 for low in self.lower)

    # ------------------------------------------------------------------ #
    # Range protocol
    # ------------------------------------------------------------------ #
    def contains(self, point: Point) -> bool:
        """Half-open membership test: ``lower <= point < lower + side``."""
        lower = self.lower
        if len(point) != len(lower):
            return False
        side = self.side
        for low, coordinate in zip(lower, point):
            if coordinate < low or coordinate >= low + side:
                return False
        return True

    def contains_closed(self, point: Point) -> bool:
        """Closed membership test (used at the bounding cube's far faces)."""
        lower = self.lower
        if len(point) != len(lower):
            return False
        side = self.side
        for low, coordinate in zip(lower, point):
            if coordinate < low or coordinate > low + side:
                return False
        return True

    def intersects(self, other) -> bool:
        """Closed-overlap test against another cube (or any range with cubes)."""
        if isinstance(other, HyperCube):
            self_side = self.side
            other_side = other.side
            for self_low, other_low in zip(self.lower, other.lower):
                if self_low > other_low + other_side or other_low > self_low + self_side:
                    return False
            return True
        return other.intersects(self)

    def contains_cube(self, other: "HyperCube") -> bool:
        """Whether ``other`` lies entirely inside this cube."""
        padded = self.side + 1e-12
        other_side = other.side
        for self_low, other_low in zip(self.lower, other.lower):
            if self_low > other_low or other_low + other_side > self_low + padded:
                return False
        return True

    # ------------------------------------------------------------------ #
    # quadtree subdivision
    # ------------------------------------------------------------------ #
    def child_index(self, point: Point) -> int:
        """Index (0 .. 2^d - 1) of the child cell containing ``point``."""
        index = 0
        half = self.side / 2
        for axis, (low, coordinate) in enumerate(zip(self.lower, point)):
            if coordinate >= low + half:
                index |= 1 << axis
        return index

    def child(self, index: int) -> "HyperCube":
        """The child cell with the given index."""
        half = self.side / 2
        lower = tuple(
            low + half if (index >> axis) & 1 else low
            for axis, low in enumerate(self.lower)
        )
        return HyperCube(lower=lower, side=half)

    def children(self) -> Iterator["HyperCube"]:
        """All ``2^d`` child cells."""
        for index in range(1 << self.dimension):
            yield self.child(index)

    def smallest_enclosing_cell(self, points: Sequence[Point]) -> "HyperCube":
        """The smallest dyadic descendant cell (or this cube) containing all points.

        Used by compressed quadtrees to skip chains of single-child cells:
        the compressed child of a cell is the smallest dyadic cell that
        still contains all the points of that subtree.
        """
        cell = self
        while True:
            child_indices = {cell.child_index(point) for point in points}
            if len(child_indices) != 1:
                return cell
            candidate = cell.child(child_indices.pop())
            if candidate.side <= 0 or not all(
                candidate.contains(point) for point in points
            ):
                return cell
            cell = candidate

    def distance_to_point(self, point: Point) -> float:
        """Euclidean distance from ``point`` to this cube (0 if inside)."""
        total = 0.0
        for low, coordinate in zip(self.lower, point):
            high = low + self.side
            if coordinate < low:
                total += (low - coordinate) ** 2
            elif coordinate > high:
                total += (coordinate - high) ** 2
        return math.sqrt(total)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"HyperCube(lower={self.lower}, side={self.side})"
