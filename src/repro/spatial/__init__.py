"""Multi-dimensional point sets: compressed quadtrees/octrees and their skip-webs.

Section 3.1 of the paper builds skip-webs over compressed quadtrees (2-d)
and octrees (any fixed dimension ``d ≥ 2``):

* :mod:`repro.spatial.geometry` — points and axis-aligned hypercubes.
* :mod:`repro.spatial.quadtree` — the compressed quadtree/octree, a
  range-determined link structure whose node ranges are the cells
  (hypercubes) and whose link ranges are the child cells.
* :mod:`repro.spatial.skip_quadtree` — the distributed skip-web over the
  quadtree; point location in ``O(log n)`` messages even when the
  underlying tree has depth ``O(n)`` (Theorem 2 + Lemma 3).
* :mod:`repro.spatial.nearest` — approximate nearest-neighbour and
  approximate range queries built on point location, following the skip
  quadtree of Eppstein, Goodrich and Sun that §3.1 cites.
"""

from repro.spatial.geometry import BoundingBox, Box, HyperCube, Point
from repro.spatial.quadtree import CompressedQuadtree, QuadtreeCell
from repro.spatial.skip_quadtree import QuadtreeStructure, SkipQuadtreeWeb
from repro.spatial.nearest import (
    approximate_nearest_neighbor,
    approximate_range_query,
)

__all__ = [
    "BoundingBox",
    "Box",
    "HyperCube",
    "Point",
    "CompressedQuadtree",
    "QuadtreeCell",
    "QuadtreeStructure",
    "SkipQuadtreeWeb",
    "approximate_nearest_neighbor",
    "approximate_range_query",
]

from repro.api.registry import StructureSpec, register_structure


def _skipquadtree(items, *, network=None, seed=0, hosts=None, **options):
    return SkipQuadtreeWeb(
        items, network=network, host_count=hosts, seed=seed, **options
    )


def _skipquadtree_bulk(items, *, network=None, seed=0, hosts=None, **options):
    return SkipQuadtreeWeb.build_from_sorted(
        items, network=network, host_count=hosts, seed=seed, **options
    )


register_structure(
    StructureSpec(
        name="skipquadtree",
        cls=SkipQuadtreeWeb,
        factory=_skipquadtree,
        bulk_factory=_skipquadtree_bulk,
        description="skip-web over a compressed quadtree/octree (§3.1, Lemma 3)",
    )
)
