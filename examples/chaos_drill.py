"""Chaos drill: a seeded fault plan against a self-healing skip-web.

The paper assumes messages always arrive and hosts never fail (§1.1).
This drill relaxes both, the repository way — **deterministically**: a
:class:`~repro.net.faults.FaultPlan` drops a fifth of the query
traffic, delays a slice of it, and crash-stops a host mid-batch (with
a scheduled recovery), while the executor absorbs the damage with
bounded, linearly backed-off retries.  Two runs of the same plan are
byte-identical, so the whole drill doubles as its own regression test.

Run with:  python examples/chaos_drill.py
(after ``pip install -e .``, or with ``PYTHONPATH=src`` from the repo root)
"""

import random

from repro.api import Cluster, FaultPlan
from repro.net.faults import crash, delay, drop
from repro.workloads import uniform_keys


def run_drill():
    """One seeded lossy batch over a fresh deployment; returns the evidence."""
    plan = FaultPlan(
        [
            drop(0.2, message_kind="query"),  # lose 20% of query deliveries
            delay(2, 0.1),  # park 10% of the rest for 2 rounds
            crash(at_round=4, recover_after=12),  # crash-stop one sampled host
        ],
        seed=7,
    )
    cluster = Cluster(
        structure="skipweb1d",
        items=uniform_keys(128, seed=7),
        seed=7,
        faults=plan,
        round_budget=80,  # no operation may stall forever
    )
    rng = random.Random(7)
    queries = [("search", rng.uniform(0.0, 1_000_000.0)) for _ in range(40)]
    report = cluster.batch(queries)
    log = cluster.network.message_log
    return cluster, report, (log.dropped, log.duplicated, log.delayed)


def main() -> None:
    print("== drill: 20% query loss + delays + a mid-batch crash ==")
    cluster, report, tallies = run_drill()
    dropped, duplicated, delayed = tallies
    summary = report.summary()
    print(
        f"  {summary['ops']} ops: {summary['completed']} delivered, "
        f"{summary.get('gave_up', 0)} gave up, "
        f"{summary.get('timed_out', 0)} timed out"
    )
    print(
        f"  faults injected: {dropped} drops, {duplicated} duplicates, "
        f"{delayed} delays"
    )
    retries = sum(handle.retries for handle in report)
    print(
        f"  self-healing: {retries} retries over {report.rounds} rounds "
        f"({report.messages} billed messages)"
    )
    assert dropped > 0  # the plan actually bit
    assert retries > 0  # and the executor healed around it

    print("\n== the crash-stopped host came back on schedule ==")
    failed = sorted(cluster.network.failed_hosts)
    print(f"  failed hosts after the batch: {failed or 'none — recovery fired'}")
    if failed:
        # The scheduled recovery lands on the plan's monotone clock, so
        # it fires during the *next* batch's rounds — run one.
        cluster.batch([("search", 123.0)])
        print(f"  after one more batch: {sorted(cluster.network.failed_hosts) or 'none'}")
    assert not cluster.network.failed_hosts

    print("\n== determinism: the same drill, byte for byte ==")
    _, second_report, second_tallies = run_drill()
    first = [(h.status, h.messages, h.retries) for h in report]
    second = [(h.status, h.messages, h.retries) for h in second_report]
    assert first == second
    assert tallies == second_tallies
    print(f"  two runs agree on all {len(first)} handles and every fault tally")

    print("\n== manual healing: cluster.recover_host() ==")
    from repro.net import FailureInjector

    victim = cluster.network.alive_host_ids()[-1]
    FailureInjector(cluster.network).fail([victim])
    print(f"  injected a crash-stop on host {victim}")
    event = cluster.recover_host(victim)
    print(f"  churn event: kind={event.kind!r}, host={event.host}, cost 0 messages")
    assert not cluster.network.failed_hosts


if __name__ == "__main__":
    main()
