"""Location-based services: find the nearest free kiosk with a quadtree skip-web.

The paper's introduction motivates multi-dimensional skip-webs with
location queries ("the closest open computer kiosk or empty parking space
on a college campus").  This example stores 2-d kiosk positions in a
distributed skip quadtree, locates query positions, and answers
approximate nearest-neighbour and range queries, printing the message
costs of each operation.

Run with:  python examples/location_service.py
(after ``pip install -e .``, or with ``PYTHONPATH=src`` from the repo root)
"""

import random

from repro.api import Cluster
from repro.spatial.geometry import HyperCube
from repro.spatial.nearest import approximate_nearest_neighbor, approximate_range_query
from repro.workloads import clustered_points


def main() -> None:
    rng = random.Random(3)
    # Kiosks cluster around campus buildings.
    kiosks = clustered_points(180, seed=11, clusters=6, spread=0.03)
    campus = HyperCube((0.0, 0.0), 1.0)

    print(f"== distributed quadtree over {len(kiosks)} kiosks ==")
    cluster = Cluster(
        structure="skipquadtree", items=kiosks, bounding_cube=campus, seed=11,
        mode="immediate",
    )
    web = cluster.structure  # domain APIs (approx-NN) live on the structure
    print(
        f"hosts: {cluster.stats().hosts}, quadtree depth: {web.level0_tree.depth()}, "
        f"max records per host: {web.max_memory_per_host()}"
    )

    print("\n== point location: which cell of the campus subdivision am I in? ==")
    for _ in range(3):
        position = (rng.random(), rng.random())
        located = cluster.nearest(position).result()
        print(
            f"  at {position[0]:.3f},{position[1]:.3f}: cell side "
            f"{located.answer.cell.side:.4f}, {located.messages} messages"
        )

    print("\n== approximate nearest kiosk ==")
    for _ in range(3):
        position = (rng.random(), rng.random())
        answer = approximate_nearest_neighbor(web, position)
        print(
            f"  at {position[0]:.3f},{position[1]:.3f}: kiosk at "
            f"{answer.approximate[0]:.3f},{answer.approximate[1]:.3f} "
            f"(ratio {answer.ratio:.2f} vs exact, {answer.messages} messages)"
        )

    print("\n== range query: kiosks inside a building footprint ==")
    footprint = HyperCube((0.30, 0.40), 0.2)
    result = approximate_range_query(web, footprint)
    print(
        f"  {len(result.points)} kiosks inside the footprint "
        f"({result.messages} messages to locate its corners)"
    )

    print("\n== a new kiosk comes online / one is removed ==")
    insert = cluster.insert((0.515, 0.515))
    delete = cluster.delete(kiosks[0])
    print(f"  insert: {insert.messages} messages, delete: {delete.messages} messages")


if __name__ == "__main__":
    main()
