"""A distributed DNA / ISBN prefix database on a trie skip-web.

The paper motivates string skip-webs with DNA databases and ISBN prefix
queries ("a prefix query for ISBN numbers in a book database could return
all titles by a certain publisher").  This example builds both: a DNA-read
store queried by motif prefix, and an ISBN-like catalogue queried by
publisher prefix, each over a distributed compressed trie.

Run with:  python examples/dna_prefix_database.py
(after ``pip install -e .``, or with ``PYTHONPATH=src`` from the repo root)
"""

from repro.api import Cluster
from repro.strings import DNA, PRINTABLE
from repro.workloads import dna_reads, isbn_like_keys


def main() -> None:
    print("== DNA read store ==")
    reads = dna_reads(250, seed=5, motif_count=6)
    dna = Cluster(structure="skiptrie", items=reads, alphabet=DNA, seed=5, mode="immediate")
    dna_web = dna.structure  # prefix_search lives on the trie structure
    print(
        f"reads: {len(reads)}, hosts: {dna.stats().hosts}, "
        f"trie depth: {dna_web.level0_trie.depth()}"
    )

    motif = reads[0][:12]
    result, matches = dna_web.prefix_search(motif)
    print(f"prefix search for motif {motif}: {len(matches)} reads, " f"{result.messages} messages")

    probe = reads[10][:20] + "A"
    located = dna.nearest(probe).result()
    print(
        f"locate {probe[:24]}...: longest stored prefix has length "
        f"{len(located.answer.matched_prefix)}, {located.messages} messages"
    )

    print("\n== ISBN catalogue ==")
    isbns = isbn_like_keys(300, seed=9, publisher_count=8)
    isbn = Cluster(structure="skiptrie", items=isbns, alphabet=PRINTABLE, seed=9, mode="immediate")
    publisher = isbns[0].rsplit("-", 2)[0]
    result, titles = isbn.structure.prefix_search(publisher)
    print(f"publisher prefix {publisher!r}: {len(titles)} titles, " f"{result.messages} messages")

    print("\n== catalogue updates ==")
    new_isbn = publisher + "-99999-0"
    insert = isbn.insert(new_isbn)
    print(
        f"insert {new_isbn}: {insert.status} ({insert.messages} messages); "
        f"now stored: {isbn.structure.contains(new_isbn)}"
    )


if __name__ == "__main__":
    main()
