"""A distributed DNA / ISBN prefix database on a trie skip-web.

The paper motivates string skip-webs with DNA databases and ISBN prefix
queries ("a prefix query for ISBN numbers in a book database could return
all titles by a certain publisher").  This example builds both: a DNA-read
store queried by motif prefix, and an ISBN-like catalogue queried by
publisher prefix, each over a distributed compressed trie.

Run with:  python examples/dna_prefix_database.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.strings import DNA, PRINTABLE, SkipTrieWeb
from repro.workloads import dna_reads, isbn_like_keys


def main() -> None:
    print("== DNA read store ==")
    reads = dna_reads(250, seed=5, motif_count=6)
    dna_web = SkipTrieWeb(reads, alphabet=DNA, seed=5)
    print(f"reads: {len(reads)}, hosts: {dna_web.host_count}, "
          f"trie depth: {dna_web.level0_trie.depth()}")

    motif = reads[0][:12]
    result, matches = dna_web.prefix_search(motif)
    print(f"prefix search for motif {motif}: {len(matches)} reads, "
          f"{result.messages} messages")

    probe = reads[10][:20] + "A"
    located = dna_web.locate(probe)
    print(f"locate {probe[:24]}...: longest stored prefix has length "
          f"{len(located.answer.matched_prefix)}, {located.messages} messages")

    print("\n== ISBN catalogue ==")
    isbns = isbn_like_keys(300, seed=9, publisher_count=8)
    isbn_web = SkipTrieWeb(isbns, alphabet=PRINTABLE, seed=9)
    publisher = isbns[0].rsplit("-", 2)[0]
    result, titles = isbn_web.prefix_search(publisher)
    print(f"publisher prefix {publisher!r}: {len(titles)} titles, "
          f"{result.messages} messages")

    print("\n== catalogue updates ==")
    new_isbn = publisher + "-99999-0"
    insert = isbn_web.insert(new_isbn)
    print(f"insert {new_isbn}: {insert.messages} messages; "
          f"now stored: {isbn_web.contains(new_isbn)}")


if __name__ == "__main__":
    main()
