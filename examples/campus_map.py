"""Planar point location in a campus map with a trapezoidal-map skip-web.

The paper's GIS motivation: a campus or city map stored as non-crossing
segments in a peer-to-peer network, answering "which face of the map is
this point in?" — planar point location — with O(log n) messages.

Run with:  python examples/campus_map.py
"""

import random
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.planar import SkipTrapezoidWeb
from repro.planar.segments import bounding_box
from repro.workloads import city_map_segments, non_crossing_segments


def main() -> None:
    rng = random.Random(17)

    print("== street-grid campus map ==")
    streets = city_map_segments(blocks_x=5, blocks_y=4, seed=17)
    box = bounding_box(streets)
    web = SkipTrapezoidWeb(streets, box=box, seed=17)
    print(f"street segments: {len(streets)}, trapezoids: "
          f"{web.level0_map.trapezoid_count()}, hosts: {web.host_count}")

    for _ in range(4):
        point = (rng.uniform(box[0], box[1]), rng.uniform(box[2], box[3]))
        located = web.locate(point)
        above = located.answer.above_segment
        below = located.answer.below_segment
        print(f"  at ({point[0]:6.1f},{point[1]:6.1f}): "
              f"street above: {'map edge' if above is None else 'yes'}, "
              f"street below: {'map edge' if below is None else 'yes'}, "
              f"{located.messages} messages")

    print("\n== a richer random map ==")
    segments = non_crossing_segments(60, seed=23)
    box = bounding_box(segments)
    web = SkipTrapezoidWeb(segments, box=box, seed=23)
    costs = [
        web.locate((rng.uniform(box[0], box[1]), rng.uniform(box[2], box[3]))).messages
        for _ in range(20)
    ]
    print(f"segments: {len(segments)}, trapezoids: {web.level0_map.trapezoid_count()}, "
          f"mean point-location messages: {sum(costs) / len(costs):.2f}")


if __name__ == "__main__":
    main()
