"""Planar point location in a campus map with a trapezoidal-map skip-web.

The paper's GIS motivation: a campus or city map stored as non-crossing
segments in a peer-to-peer network, answering "which face of the map is
this point in?" — planar point location — with O(log n) messages.

Run with:  python examples/campus_map.py
(after ``pip install -e .``, or with ``PYTHONPATH=src`` from the repo root)
"""

import random

from repro.api import Cluster
from repro.planar.segments import bounding_box
from repro.workloads import city_map_segments, non_crossing_segments


def main() -> None:
    rng = random.Random(17)

    print("== street-grid campus map ==")
    streets = city_map_segments(blocks_x=5, blocks_y=4, seed=17)
    box = bounding_box(streets)
    cluster = Cluster(
        structure="skiptrapezoid", items=streets, box=box, seed=17, mode="immediate"
    )
    print(
        f"street segments: {len(streets)}, trapezoids: "
        f"{cluster.structure.level0_map.trapezoid_count()}, "
        f"hosts: {cluster.stats().hosts}"
    )

    for _ in range(4):
        point = (rng.uniform(box[0], box[1]), rng.uniform(box[2], box[3]))
        located = cluster.nearest(point).result()
        above = located.answer.above_segment
        below = located.answer.below_segment
        print(
            f"  at ({point[0]:6.1f},{point[1]:6.1f}): "
            f"street above: {'map edge' if above is None else 'yes'}, "
            f"street below: {'map edge' if below is None else 'yes'}, "
            f"{located.messages} messages"
        )

    print("\n== a richer random map, queried as one concurrent batch ==")
    segments = non_crossing_segments(60, seed=23)
    box = bounding_box(segments)
    cluster = Cluster(structure="skiptrapezoid", items=segments, box=box, seed=23)
    report = cluster.batch(
        [
            ("search", (rng.uniform(box[0], box[1]), rng.uniform(box[2], box[3])))
            for _ in range(20)
        ]
    )
    print(
        f"segments: {len(segments)}, trapezoids: "
        f"{cluster.structure.level0_map.trapezoid_count()}, "
        f"mean point-location messages: {report.messages_per_op:.2f} "
        f"({report.rounds} rounds for the whole batch)"
    )


if __name__ == "__main__":
    main()
