"""Quickstart: the ``repro.api.Cluster`` façade in five minutes.

Deploys a one-dimensional skip-web over 200 numeric keys through the
public API — one constructor instead of hand-wiring network, structure,
executor and churn control — then runs queries, a concurrent batch, an
update, a range report and a membership change, printing the message
costs the paper's Theorem 2 bounds.

Run with:  python examples/quickstart.py
(after ``pip install -e .``, or with ``PYTHONPATH=src`` from the repo root)
"""

import random
import shutil
import tempfile
from pathlib import Path

from repro.api import Cluster, available_structures
from repro.workloads import uniform_keys


def main() -> None:
    rng = random.Random(42)
    keys = uniform_keys(200, seed=7)

    print("== structure families constructible via Cluster(structure=...) ==")
    print("  " + ", ".join(available_structures()))

    print("\n== deploying a 1-d skip-web over", len(keys), "keys (one host per key) ==")
    with Cluster(structure="skipweb1d", items=keys, seed=7, mode="immediate") as cluster:
        stats = cluster.stats()
        print(f"hosts: {stats.hosts}, max records per host: {stats.max_memory_per_host}")

        print("\n== nearest-neighbour queries ==")
        for _ in range(5):
            query = rng.uniform(0, 1_000_000)
            handle = cluster.nearest(query, origin_host=rng.randrange(stats.hosts))
            result = handle.result()
            print(
                f"  query {query:12.1f} -> nearest {result.answer.nearest:12.1f} "
                f"({handle.messages} messages, {len(result.hosts_visited)} hosts on path)"
            )

        print("\n== a concurrent batch through the round engine ==")
        report = cluster.batch(
            [("search", rng.uniform(0, 1_000_000)) for _ in range(40)]
        )
        print(
            f"  {report.completed}/{report.ops} ok in {report.rounds} rounds, "
            f"{report.messages_per_op:.2f} msgs/op, "
            f"worst per-host per-round load {report.max_round_congestion}"
        )

        print("\n== updates and range reporting ==")
        insert = cluster.insert(424242.42)
        print(f"  insert 424242.42: {insert.status} ({insert.messages} messages)")
        window = cluster.range((420000.0, 430000.0))
        print(
            f"  range [420000, 430000]: {window.result().count} keys "
            f"({window.messages} messages)"
        )
        delete = cluster.delete(keys[10])
        print(f"  delete {keys[10]}: {delete.status} ({delete.messages} messages)")

        print("\n== live membership change with self-repair ==")
        join = cluster.join_host()
        print(
            f"  join: {join.records_moved} records rebalanced "
            f"({join.repair_messages} messages)"
        )
        crash = cluster.crash_host()
        print(
            f"  crash + repair: {crash.records_moved} records re-homed "
            f"({crash.repair_messages} messages)"
        )

    print("\n== bucket skip-web (§2.4.1) bulk-loaded via build_from_sorted ==")
    bucket = Cluster(structure="bucket-skipweb1d", memory_size=64, seed=7, mode="immediate")
    load = bucket.bulk_load(sorted(set(float(key) for key in keys)))
    stats = bucket.stats()
    print(
        f"hosts: {stats.hosts}, max items per host: {stats.max_memory_per_host}, "
        f"construction messages: {load.messages}"
    )
    costs = [bucket.nearest(rng.uniform(0, 1_000_000)).messages for _ in range(20)]
    print(
        f"  mean query messages: {sum(costs) / len(costs):.2f} "
        "(vs the plain skip-web's O(log n))"
    )

    print("\n== error taxonomy: what a DHT cannot do ==")
    chord = Cluster(structure="chord", items=keys)
    handle = chord.range((0.0, 1000.0))
    print(f"  range query on Chord: status={handle.status!r} " "(hashing destroys order, §1.2)")

    print("\n== durable runs: journal, kill, recover (DESIGN.md §9) ==")
    store = tempfile.mkdtemp(prefix="quickstart-") + "/run.sqlite"
    durable = Cluster(structure="skipweb1d", items=keys[:50], seed=7, storage=store)
    durable.batch([("search", 123.0), ("insert", 1.5)])
    durable.crash_host()
    digest_before = durable.stats().messages_total
    durable.close()  # or a SIGKILL: every committed operation is already logged
    recovered = Cluster.recover(store)
    print(f"  recovered {recovered.applied_operations} operations from {store}")
    print(f"  message counters match: {recovered.stats().messages_total == digest_before}")
    recovered.close()
    shutil.rmtree(str(Path(store).parent))


if __name__ == "__main__":
    main()
