"""Quickstart: a one-dimensional skip-web over a simulated peer-to-peer network.

Builds a skip-web over 200 numeric keys spread across 200 hosts, runs
nearest-neighbour queries from different origin hosts, inserts and deletes
keys, and prints the message costs — the quantities the paper's Theorem 2
bounds.

Run with:  python examples/quickstart.py
"""

import random
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.onedim import BucketSkipWeb1D, SkipWeb1D
from repro.workloads import uniform_keys


def main() -> None:
    rng = random.Random(42)
    keys = uniform_keys(200, seed=7)

    print("== building a 1-d skip-web over", len(keys), "keys (one host per key) ==")
    web = SkipWeb1D(keys, seed=7)
    print(f"hosts: {web.host_count}, max records per host: {web.max_memory_per_host()}")

    print("\n== nearest-neighbour queries ==")
    for _ in range(5):
        query = rng.uniform(0, 1_000_000)
        result = web.nearest(query, origin_host=rng.randrange(web.host_count))
        print(
            f"  query {query:12.1f} -> nearest {result.answer.nearest:12.1f} "
            f"({result.messages} messages, {len(result.hosts_visited)} hosts on path)"
        )

    print("\n== updates ==")
    new_key = 424242.42
    insert = web.insert(new_key)
    print(f"  insert {new_key}: {insert.messages} messages "
          f"({insert.records_added} records created)")
    print(f"  membership check: {web.contains(new_key)}")
    delete = web.delete(keys[10])
    print(f"  delete {keys[10]}: {delete.messages} messages")

    print("\n== bucket skip-web (§2.4.1): hosts that can store M = 64 items ==")
    bucket = BucketSkipWeb1D(keys, memory_size=64, seed=7)
    print(f"hosts: {bucket.host_count}, max items per host: {bucket.max_memory_per_host()}")
    costs = [bucket.nearest(rng.uniform(0, 1_000_000)).messages for _ in range(20)]
    print(f"  mean query messages: {sum(costs) / len(costs):.2f} "
          "(vs the plain skip-web's O(log n))")


if __name__ == "__main__":
    main()
