"""Geo-distributed deployment: the same skip-web priced under three topologies.

Every hop a skip-web walk takes costs 1 message in the paper's model.
This example deploys the *same* 1-d skip-web under three link-cost
models — the flat default, a data-center layout (cheap intra-rack,
expensive inter-rack), and a geo-distributed layout (hosts placed into
regions by a seeded generator, links priced by a per-region weight
matrix) — and runs one identical query batch under each.  Routing never
changes, so the message counts match exactly; what changes is what the
traffic *costs*: the weighted latency and the busiest link.

Run with:  python examples/geo_cluster.py
(after ``pip install -e .``, or with ``PYTHONPATH=src`` from the repo root)
"""

import random

from repro.api import Cluster, GeoTopology
from repro.workloads import uniform_keys


def run_batch(topology):
    """One seeded query batch over a fresh deployment; returns the report."""
    cluster = Cluster(
        structure="skipweb1d",
        items=uniform_keys(128, seed=7),
        seed=7,
        topology=topology,
        mode="immediate",
    )
    rng = random.Random(7)
    queries = [("search", rng.uniform(0.0, 1_000_000.0)) for _ in range(60)]
    return cluster, cluster.batch(queries)


def main() -> None:
    print("== one skip-web, three cost models ==")
    reports = {}
    for name in ("flat", "clustered", "geo"):
        cluster, report = run_batch(name)
        reports[name] = report
        congestion = report.round_congestion()
        print(
            f"  {name:9s}: {report.messages} msgs in {report.rounds} rounds, "
            f"weighted latency {report.latency} "
            f"({report.latency_per_op:.1f}/op), "
            f"max link load {congestion.max_link_round_load}"
        )

    assert reports["flat"].messages == reports["geo"].messages  # routing unchanged
    assert reports["flat"].latency == reports["flat"].messages  # flat: cost 1/hop

    print("\n== who lives where under the geo layout? ==")
    geo = GeoTopology(regions=3, seed=7)
    cluster, report = run_batch(geo)
    placement = geo.placement(cluster.network.alive_host_ids())
    for region in range(geo.regions):
        hosts = sorted(host for host, where in placement.items() if where == region)
        preview = ", ".join(str(host) for host in hosts[:8])
        more = f", … ({len(hosts)} total)" if len(hosts) > 8 else ""
        print(f"  region {region}: hosts {preview}{more}")

    print("\n== inter-region link prices (seeded weight matrix) ==")
    for i, row in enumerate(geo.weights):
        print(f"  from region {i}: {list(row)}")

    summary = cluster.network.topology_congestion_summary()
    src, dst = summary["busiest_link"]
    print(
        f"\nbusiest link: {src} -> {dst} "
        f"(region {geo.cluster_of(src)} -> {geo.cluster_of(dst)}), "
        f"load {summary['busiest_link_load']} in round "
        f"{summary['busiest_link_round']}"
    )
    print(
        f"whole batch: weight {summary['weight']} over {summary['rounds']} rounds, "
        f"busiest region {summary['busiest_cluster']} "
        f"(load {summary['busiest_cluster_load']})"
    )


if __name__ == "__main__":
    main()
