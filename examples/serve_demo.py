"""Serve demo: the HTTP/JSON service layer, end to end, in one process.

Boots the :mod:`repro.server` WSGI app on an OS-assigned port (stdlib
``wsgiref`` on a daemon thread), then plays a full client against it
with nothing but ``urllib``:

1. create a second named cluster over the wire (``POST /clusters``),
2. run single operations and a concurrent batch, watching the handle
   statuses and HTTP codes of the error taxonomy,
3. crash a host, repair it, and read the congestion aggregates the
   dashboard polls from ``/dashboard/stats``,
4. finish with a small seeded hammer run — twice — to show the
   byte-identity property the CI serve-gate enforces.

Run with:  python examples/serve_demo.py
(after ``pip install -e .``, or with ``PYTHONPATH=src`` from the repo root)
"""

import json

from repro.server import create_app, request_json, run_hammer, serve_background
from repro.workloads import uniform_keys

ITEMS = 96
SEED = 7


def main():
    app = create_app(
        initial=[
            {
                "name": "default",
                "structure": "skipweb1d",
                "generate": {"kind": "uniform", "count": ITEMS},
                "seed": SEED,
            }
        ]
    )
    server, _thread = serve_background(app, "127.0.0.1", 0)
    url = f"http://127.0.0.1:{server.server_address[1]}"
    print(f"serving on {url} (dashboard at {url}/)")

    try:
        # -- a second cluster over the wire ----------------------------- #
        code, body = request_json(
            url,
            "POST",
            "/clusters",
            {
                "name": "names",
                "structure": "skiptrie",
                "items": ["ada", "alan", "edsger", "grace", "tony"],
                "seed": 1,
            },
        )
        print(
            f"\nPOST /clusters -> {code}: cluster {body['name']!r} "
            f"({body['structure']}, {body['items_loaded']} items)"
        )

        # -- single operations and the error taxonomy ------------------- #
        keys = uniform_keys(ITEMS, seed=SEED)
        code, body = request_json(url, "POST", "/ops/get", {"payload": keys[5]})
        print(
            f"GET known key      -> HTTP {code}, status {body['status']!r}, "
            f"{body['messages']} messages over {body['rounds']} rounds"
        )
        code, body = request_json(
            url, "POST", "/ops/range",
            {"cluster": "names", "payload": {"prefix": "a"}},
        )
        print(f"prefix range       -> HTTP {code}, status {body['status']!r}")
        code, body = request_json(url, "POST", "/ops/delete", {"payload": -1.0})
        print(
            f"delete missing key -> HTTP {code}, status {body['status']!r}, "
            f"typed error {body['error']!r}"
        )

        # -- one concurrent batch --------------------------------------- #
        operations = [{"kind": "get", "payload": key} for key in keys[:10]]
        operations.append({"kind": "range", "payload": [keys[0], keys[0] + 5e4]})
        code, body = request_json(url, "POST", "/batch", {"operations": operations})
        summary = body["summary"]
        print(
            f"\nPOST /batch ({len(operations)} ops) -> "
            f"{summary['completed']} ok in {summary['rounds']} rounds, "
            f"{summary['messages']} messages"
        )

        # -- churn lifecycle + dashboard aggregates --------------------- #
        code, event = request_json(url, "POST", "/churn/crash", {})
        print(
            f"\ncrash host {event['host']} -> {event['repair_messages']} "
            f"repair messages, {event['pointers_rewired']} pointers rewired"
        )
        code, stats = request_json(url, "GET", "/dashboard/stats?cluster=default")
        row = stats["clusters"][0]
        print(
            "dashboard stats    ->",
            json.dumps(
                {
                    "ops": row["ops"]["total"],
                    "by_status": row["ops"]["by_status"],
                    "congestion": row["congestion"],
                    "repair": row["repair"],
                },
                indent=2,
            ),
        )

        # -- the determinism gate, in miniature ------------------------- #
        print("\nhammer x2 (3 sessions x 8 ops, seed 5):")
        reports = [
            run_hammer(
                url, cluster="default", sessions=3, ops=8, seed=5, items=ITEMS, key_seed=SEED
            )
            for _ in range(2)
        ]
        for index, report in enumerate(reports):
            print(
                f"  run {index + 1}: {report.requests} requests, "
                f"{report.requests_per_sec:.0f} req/s, "
                f"digest {report.digest[:16]}"
            )
        identical = reports[0].deterministic_report() == reports[1].deterministic_report()
        print(f"  deterministic reports identical: {identical}")
        if not identical:
            raise SystemExit("hammer runs diverged — determinism bug")
    finally:
        server.shutdown()
        server.server_close()
        app.manager.close()
    print("\nserver stopped cleanly")


if __name__ == "__main__":
    main()
