"""Legacy setup shim.

The project is fully described by ``pyproject.toml``.  This file exists so
that the package can be installed in editable mode on environments whose
setuptools is too old to expose PEP 660 editable wheels without the
``wheel`` package (``python setup.py develop`` as a fallback for
``pip install -e .``).
"""

from setuptools import setup

setup()
